"""Compiled miss handlers for the DiCo family (DiCo, Providers, Arin).

:func:`_compile_family` flattens the four transaction hooks plus every
helper they run on — supplier prediction, owner-cache pointers, hint
fan-out, tree/broadcast invalidation, ownership hand-offs — into
closures generated at arm time, mirroring the object-engine methods in
``repro.core.protocols.dico`` / ``providers`` / ``arin`` statement for
statement.  The three protocols share one compile function because
``_handle_read_miss`` / ``_handle_write_miss`` are inherited unchanged
from :class:`DiCoProtocol`; the variant argument selects the flattened
versions of the legs the subclasses override (``_read_at_l1``,
``_read_at_home``, ``_write_at_owner``, ``_write_at_home`` and the
replacement paths).

Accounting follows the same batching contract as
:mod:`repro.simx.handlers_directory`:

* unicast network counters are per-message-type (count, hops-sum)
  cells; broadcasts (Arin's three-phase invalidation) batch as plain
  counts because a tree broadcast always covers ``n_tiles - 1`` links,
* the per-tile L1/L2 data/tag charges and the prediction-cache
  lookup/hit/update tallies batch into per-tile arrays,
* the checker's ``check_read`` / ``commit_write`` are inlined with the
  same ``defaultdict`` touches and live ``_commit_log`` re-read,
* everything is flushed additively at observation boundaries — sound
  because the totals are pure monotonic sums never read mid-run.

Rare legs — the L2C$ pointer eviction (``_forced_relinquish``) — call
the object method, which runs on the instance-patched fast helpers;
mixing live and batched counter updates is sound because every counter
is additive.  The object-engine methods remain the single source of
truth: any edit to them must be mirrored here, which the source-drift
fingerprints in :mod:`repro.simx.drift` enforce.
"""

from __future__ import annotations

from typing import Callable

from ..core.messages import MessageType
from ..core.ownercache import _OwnerEntry
from ..core.protocols.base import CoherenceProtocol, L1Line, L2Line
from ..core.states import L1State
from .tables import ProtocolTables

__all__ = ["compile_dico_handlers"]

# unicast message types batched as (count, hops-sum) cells; the cell
# index of each type is fixed by this tuple (flit sizes resolve at
# compile time from the tables)
_UNICAST_TYPES = (
    MessageType.GETS,
    MessageType.GETX,
    MessageType.FWD_GETS,
    MessageType.FWD_GETX,
    MessageType.DATA,
    MessageType.DATA_OWNER,
    MessageType.HINT,
    MessageType.CHANGE_OWNER,
    MessageType.CHANGE_OWNER_ACK,
    MessageType.INV,
    MessageType.INV_ACK,
    MessageType.PUT,
    MessageType.PUT_CLEAN,
    MessageType.WRITEBACK,
    MessageType.MEM_FETCH,
    MessageType.MEM_DATA,
    MessageType.PROVIDERSHIP,
    MessageType.CHANGE_PROVIDER,
    MessageType.CHANGE_PROVIDER_ACK,
    MessageType.NO_PROVIDER,
)
_N_UNICAST = len(_UNICAST_TYPES)
_I_LOC = _N_UNICAST  # self-sends share the cm list, no hops-sum

# scalar cells
_N_SC = 11
(
    _SC_L2HITS,
    _SC_UNICAST,
    _SC_MEMFETCH,
    _SC_L2MISS,
    _SC_WB,
    _SC_L1EV,
    _SC_L2EV,
    _SC_CHECKED,
    _SC_COMMITS,
    _SC_MEMACC,
    _SC_BCAST,
) = range(_N_SC)


def compile_dico_handlers(
    proto: CoherenceProtocol, tables: ProtocolTables
) -> Callable[[], None]:
    return _compile_family(proto, tables, "dico")


def _compile_family(
    proto: CoherenceProtocol, tables: ProtocolTables, variant: str
) -> Callable[[], None]:
    """Bind compiled handler closures onto ``proto``; returns the flush.

    Caller must have installed the fast helpers / cache methods first
    (the hoisted bound methods pick up the flattened versions) and must
    guarantee ``proto._trace is None`` — the compiled paths omit the
    tracing branches entirely.
    """
    cfg = proto.config
    L1_TAG_L1C = cfg.l1.tag_latency + proto._l1c_lat
    L1_ACC = cfg.l1.access_latency
    L2_TAG = proto._l2_tag_lat
    L2_DATA = cfg.l2.data_latency
    home_mask = proto._home_mask

    hops_flat = tables.hops_flat
    n_tiles = tables.n_tiles
    hop_cycles = tables.hop_cycles
    flits = tables.flits
    tiles_range = range(n_tiles)

    # per-type cell indices + latency addends (latency = hops*hop_cycles
    # + flits - 1), resolved at compile time
    (
        I_GETS,
        I_GETX,
        I_FGETS,
        I_FGETX,
        I_DATA,
        I_DOWN,
        I_HINT,
        I_CO,
        I_COACK,
        I_INV,
        I_ACK,
        I_PUT,
        I_PUTC,
        I_WB,
        I_MF,
        I_MD,
        I_PROV,
        I_CP,
        I_CPACK,
        I_NOPROV,
    ) = range(_N_UNICAST)
    I_LOC = _I_LOC
    msg_flits = [flits[t] for t in _UNICAST_TYPES]
    A_GETS = msg_flits[I_GETS] - 1
    A_GETX = msg_flits[I_GETX] - 1
    A_FGETS = msg_flits[I_FGETS] - 1
    A_FGETX = msg_flits[I_FGETX] - 1
    A_DATA = msg_flits[I_DATA] - 1
    A_DOWN = msg_flits[I_DOWN] - 1
    A_CO = msg_flits[I_CO] - 1
    A_COACK = msg_flits[I_COACK] - 1
    A_INV = msg_flits[I_INV] - 1
    A_ACK = msg_flits[I_ACK] - 1

    l1s = proto.l1s
    l2s = proto.l2s
    l1cs = proto.l1cs
    l2cs = proto.l2cs
    l1_lookup = [c.lookup for c in l1s]
    l1_peek = [c.peek for c in l1s]
    l1_insert = [c.insert for c in l1s]
    l1_invalidate = [c.invalidate for c in l1s]
    l1_displace = [c.displace for c in l1s]
    l2_peek = [c.peek for c in l2s]
    l2_lookup = [c.lookup for c in l2s]
    l2_insert = [c.insert for c in l2s]
    l2_displace = [c.displace for c in l2s]
    oc_lookup = [oc.array.lookup for oc in l2cs]
    oc_insert = [oc.array.insert for oc in l2cs]
    oc_invalidate = [oc.array.invalidate for oc in l2cs]
    pc_resident = [p._resident for p in l1cs]
    pc_resident_get = [p._resident.get for p in l1cs]
    pc_array_lookup = [p.array.lookup for p in l1cs]
    pc_array_insert = [p.array.insert for p in l1cs]
    pc_array_invalidate = [p.array.invalidate for p in l1cs]

    checker = proto.checker
    version_map = checker._version
    l1_names = proto._l1_names
    busy = proto._busy
    busy_get = busy.get
    mem_version_map = proto._mem_version
    mem_version_get = mem_version_map.get
    mem_version_setdefault = mem_version_map.setdefault
    memctl = proto.memctl
    positions = memctl.positions
    nearest = memctl._nearest
    base_latency = memctl._base_latency
    randbelow = memctl._randbelow
    jitter_cycles = memctl.jitter_cycles
    jitter_bound = jitter_cycles + 1
    # rare leg: L2C$ pointer eviction (object method of the concrete
    # subclass, running on the instance-patched fast helpers; live
    # counters mix soundly with the batched cells)
    forced_relinquish = proto._forced_relinquish

    S_state = L1State.S
    E_state = L1State.E
    M_state = L1State.M
    O_state = L1State.O
    P_state = L1State.P
    EM_states = (L1State.E, L1State.M)
    EMO_states = (L1State.E, L1State.M, L1State.O)

    # --- batched counter cells (zeroed by flush) ----------------------
    cm = [0] * (_N_UNICAST + 1)  # count per type (+ local self-sends)
    hm = [0] * _N_UNICAST        # hops-sum per type
    sc = [0] * _N_SC             # scalar stats
    cb = [0, 0]                  # broadcast counts (INV/UNBLOCK)
    bl1_r = [0] * n_tiles        # L1 data_reads per tile
    bl1_w = [0] * n_tiles        # L1 data_writes per tile
    bl2_r = [0] * n_tiles        # L2 data_reads per home
    bl2_w = [0] * n_tiles        # L2 data_writes per home
    bl2_tw = [0] * n_tiles       # L2 tag_writes per home
    pll = [0] * n_tiles          # L1C$ lookups per tile
    plh = [0] * n_tiles          # L1C$ hits per tile
    plu = [0] * n_tiles          # L1C$ updates per tile

    # --- inlined shared glue ------------------------------------------

    def mem_fetch(home, block):
        # mirrors CoherenceProtocol.mem_fetch +
        # MemoryControllers.access_latency (same RNG draw sequence)
        sc[_SC_MEMFETCH] += 1
        sc[_SC_L2MISS] += 1
        ctrl = positions[nearest[home]]
        hops = hops_flat[home * n_tiles + ctrl]
        if hops:
            cm[I_MF] += 1
            hm[I_MF] += hops
        else:
            cm[I_LOC] += 1
        hops = hops_flat[ctrl * n_tiles + home]
        if hops:
            cm[I_MD] += 1
            hm[I_MD] += hops
        else:
            cm[I_LOC] += 1
        sc[_SC_MEMACC] += 1
        jitter = randbelow(jitter_bound) if jitter_cycles else 0
        return base_latency[home] + jitter

    def mem_writeback(home, block, version):
        # mirrors CoherenceProtocol.mem_writeback
        sc[_SC_WB] += 1
        ctrl = positions[nearest[home]]
        hops = hops_flat[home * n_tiles + ctrl]
        if hops:
            cm[I_WB] += 1
            hm[I_WB] += hops
        else:
            cm[I_LOC] += 1
        mem_version_map[block] = version

    def drop_l1(tile, block):
        # mirrors CoherenceProtocol.drop_l1 +
        # PredictionCache.block_evicted (tracer-off branch)
        line = l1_invalidate[tile](block)
        if line is not None:
            sup = pc_resident[tile].pop(block, None)
            if sup is not None:
                pc_array_insert[tile](block, sup)
        return line

    def fill_l1(tile, block, line, now, supplier):
        # mirrors CoherenceProtocol.fill_l1 +
        # PredictionCache.block_evicted / block_cached (tracer-off)
        victim = l1_displace[tile](block)
        if victim is not None:
            vblock = victim[0]
            sup = pc_resident[tile].pop(vblock, None)
            if sup is not None:
                pc_array_insert[tile](vblock, sup)
            sc[_SC_L1EV] += 1
            evict_l1_line(tile, vblock, victim[1], now)
        l1_insert[tile](block, line)
        bl1_w[tile] += 1
        pc_array_invalidate[tile](block)
        if supplier is not None and supplier != tile:
            pc_resident[tile][block] = supplier
        else:
            pc_resident[tile].pop(block, None)

    def fill_l2(home, block, entry, now):
        # mirrors CoherenceProtocol.fill_l2 (tracer-off branch)
        victim = l2_displace[home](block)
        if victim is not None:
            sc[_SC_L2EV] += 1
            evict_l2_entry(home, victim[0], victim[1], now)
        l2_insert[home](block, entry)
        if entry.has_data:
            bl2_w[home] += 1

    def pc_update(s, block, supplier):
        # mirrors PredictionCache.update (incl. the self-pointer forget)
        if supplier == s:
            pc_resident[s].pop(block, None)
            pc_array_invalidate[s](block)
            return
        plu[s] += 1
        res = pc_resident[s]
        if block in res:
            res[block] = supplier
        else:
            pc_array_insert[s](block, supplier)

    def oc_set_owner(block, tile, now):
        # mirrors DiCoProtocol._set_l1_owner + OwnerCache.set_owner;
        # the pointer-eviction leg is rare -> object method
        home = block & home_mask
        existing = oc_lookup[home](block)
        if existing is not None:
            existing.owner_tile = tile
            existing.transfer_locked = False
            return
        victim = oc_insert[home](block, _OwnerEntry(owner_tile=tile))
        if victim is not None:
            l2cs[home].forced_relinquishes += 1
            forced_relinquish(victim[0], victim[1].owner_tile, now)

    def demote_to_copy(home, block):
        # mirrors DiCoProtocol._demote_to_copy
        entry = l2_peek[home](block)
        if entry is None:
            return
        entry.is_owner = False
        entry.inter_area = False
        entry.owner_area = None
        entry.sharers = 0
        entry.propos = {}
        entry.plain_copy = True

    def fill_plain_copy(home, block, version, now):
        # mirrors DiCoProtocol._fill_plain_copy
        entry = l2_peek[home](block)
        if entry is not None:
            entry.has_data = True
            entry.version = version
            entry.dirty = False
            entry.is_owner = False
            entry.plain_copy = True
            bl2_w[home] += 1
        else:
            fill_l2(
                home,
                block,
                L2Line(has_data=True, version=version, plain_copy=True),
                now,
            )

    def put_ownership_home(tile, block, line, now):
        # mirrors DiCoProtocol._put_ownership_home
        home = block & home_mask
        entry = l2_peek[home](block)
        if (
            entry is not None
            and entry.has_data
            and entry.version == line.version
        ):
            hops = hops_flat[tile * n_tiles + home]
            if hops:
                cm[I_PUTC] += 1
                hm[I_PUTC] += hops
            else:
                cm[I_LOC] += 1
            entry.is_owner = True
            entry.plain_copy = False
            entry.dirty = entry.dirty or line.dirty
            entry.sharers = 0
            entry.propos = {}
            entry.owner_area = None
            bl2_tw[home] += 1
        else:
            hops = hops_flat[tile * n_tiles + home]
            if hops:
                cm[I_PUT] += 1
                hm[I_PUT] += hops
            else:
                cm[I_LOC] += 1
            entry = L2Line(
                has_data=True,
                dirty=line.dirty,
                version=line.version,
                is_owner=True,
            )
            fill_l2(home, block, entry, now)
        oc_invalidate[home](block)
        return entry

    def live_sharers(block, mask, exclude):
        # mirrors DiCoProtocol._live_sharers (peeks are side-effect free)
        live = []
        while mask:
            low = mask & -mask
            t = low.bit_length() - 1
            mask ^= low
            if t != exclude and l1_peek[t](block) is not None:
                live.append(t)
        return live

    def send_hints(block, sharers, new_supplier, now):
        # mirrors DiCoProtocol._send_hints
        for s in sharers:
            if s == new_supplier:
                continue
            hops = hops_flat[new_supplier * n_tiles + s]
            if hops:
                cm[I_HINT] += 1
                hm[I_HINT] += hops
            else:
                cm[I_LOC] += 1
            pc_update(s, block, new_supplier)

    def invalidate_sharers(orderer, ack_to, block, mask, now, skip):
        # mirrors DiCoProtocol._invalidate_sharers
        worst = 0
        while mask:
            low = mask & -mask
            sharer = low.bit_length() - 1
            mask ^= low
            if sharer == skip:
                continue
            hops = hops_flat[orderer * n_tiles + sharer]
            if hops:
                cm[I_INV] += 1
                hm[I_INV] += hops
                pair = hops * hop_cycles + A_INV
            else:
                cm[I_LOC] += 1
                pair = 0
            drop_l1(sharer, block)
            pc_update(sharer, block, ack_to)
            hops = hops_flat[sharer * n_tiles + ack_to]
            if hops:
                cm[I_ACK] += 1
                hm[I_ACK] += hops
                pair += hops * hop_cycles + A_ACK
            else:
                cm[I_LOC] += 1
            if pair > worst:
                worst = pair
            sc[_SC_UNICAST] += 1
        return worst

    def commit_write(tile, block, now):
        # mirrors DiCoProtocol._commit_write with the checker's
        # commit_write inlined (same defaultdict touch, same live
        # _commit_log re-read)
        version = version_map[block] + 1
        version_map[block] = version
        sc[_SC_COMMITS] += 1
        commit_log = checker._commit_log
        if commit_log is not None:
            commit_log.append(block)
        existing = l1_peek[tile](block)
        if existing is not None:
            existing.state = M_state
            existing.dirty = True
            existing.version = version
            existing.sharers = 0
            existing.propos = {}
            bl1_w[tile] += 1
            pc_array_invalidate[tile](block)
            pc_resident[tile].pop(block, None)
        else:
            fill_l1(
                tile,
                block,
                L1Line(state=M_state, version=version, dirty=True),
                now,
                None,
            )

    # --- dico baseline legs (the arin fallback reuses write_at_home) --

    def dico_write_at_home(tile, block, now, had_copy):
        # mirrors DiCoProtocol._write_at_home
        home = block & home_mask
        t = L2_TAG
        links = 0
        e = oc_lookup[home](block)
        owner = e.owner_tile if e is not None else None
        if owner is not None:
            hops = hops_flat[home * n_tiles + owner]
            if hops:
                cm[I_FGETX] += 1
                hm[I_FGETX] += hops
                t += hops * hop_cycles + A_FGETX
            else:
                cm[I_LOC] += 1
            links += hops
            lat, hops2 = write_at_owner(owner, tile, block, now, had_copy)
            return t + lat, links + hops2, "unpredicted_fwd"

        entry = l2_lookup[home](block)
        if entry is not None and entry.is_owner:
            inv_worst = invalidate_sharers(
                home, tile, block, entry.sharers, now, tile
            )
            hops = hops_flat[home * n_tiles + tile]
            if had_copy:
                if hops:
                    cm[I_COACK] += 1
                    hm[I_COACK] += hops
                    data_lat = hops * hop_cycles + A_COACK
                else:
                    cm[I_LOC] += 1
                    data_lat = 0
                data_hops = hops
            else:
                if entry.has_data:
                    sc[_SC_L2HITS] += 1
                    bl2_r[home] += 1
                    data_lat = L2_DATA
                else:
                    data_lat = mem_fetch(home, block)
                if hops:
                    cm[I_DOWN] += 1
                    hm[I_DOWN] += hops
                    data_lat += hops * hop_cycles + A_DOWN
                else:
                    cm[I_LOC] += 1
                data_hops = hops
            demote_to_copy(home, block)
            oc_set_owner(block, tile, now)
            t += inv_worst if inv_worst > data_lat else data_lat
            links += data_hops
            commit_write(tile, block, now)
            return t, links, "unpredicted_home"

        # not on chip
        t += mem_fetch(home, block)
        hops = hops_flat[home * n_tiles + tile]
        if hops:
            cm[I_DOWN] += 1
            hm[I_DOWN] += hops
            t += hops * hop_cycles + A_DOWN
        else:
            cm[I_LOC] += 1
        links += hops
        oc_set_owner(block, tile, now)
        commit_write(tile, block, now)
        return t, links, "memory"

    def dico_evict_l2_entry(home, block, entry, now):
        # mirrors DiCoProtocol._evict_l2_entry
        if entry.plain_copy:
            return  # redundant copy under a live L1 owner: silent drop
        worst = 0
        mask = entry.sharers
        while mask:
            low = mask & -mask
            sharer = low.bit_length() - 1
            mask ^= low
            hops = hops_flat[home * n_tiles + sharer]
            if hops:
                cm[I_INV] += 1
                hm[I_INV] += hops
                pair = hops * hop_cycles + A_INV
            else:
                cm[I_LOC] += 1
                pair = 0
            drop_l1(sharer, block)
            hops = hops_flat[sharer * n_tiles + home]
            if hops:
                cm[I_ACK] += 1
                hm[I_ACK] += hops
                pair += hops * hop_cycles + A_ACK
            else:
                cm[I_LOC] += 1
            if pair > worst:
                worst = pair
            sc[_SC_UNICAST] += 1
        if entry.dirty:
            mem_writeback(home, block, entry.version)
        else:
            mem_version_setdefault(block, entry.version)
        until = now + worst
        if until > busy_get(block, 0):
            busy[block] = until

    # --- variant-specific legs ----------------------------------------

    if variant != "dico":
        area_of = proto.areas._area_of

    if variant == "dico":

        def read_at_l1(holder, requestor, block, now):
            # mirrors DiCoProtocol._read_at_l1
            line = l1_lookup[holder](block)
            if line is None or line.state not in EMO_states:
                return None
            t = L1_ACC
            bl1_r[holder] += 1
            line.sharers |= 1 << requestor
            if line.state in EM_states:
                line.state = O_state
            hops = hops_flat[holder * n_tiles + requestor]
            if hops:
                cm[I_DATA] += 1
                hm[I_DATA] += hops
                data_lat = hops * hop_cycles + A_DATA
            else:
                cm[I_LOC] += 1
                data_lat = 0
            sc[_SC_CHECKED] += 1
            if line.version != version_map[block]:
                checker.check_read(
                    block, line.version, where=l1_names[requestor]
                )
            fill_l1(
                requestor,
                block,
                L1Line(state=S_state, version=line.version),
                now,
                holder,
            )
            return t + data_lat, hops, "pred_owner_hit"

        def read_at_home(tile, block, now, forwarder):
            # mirrors DiCoProtocol._read_at_home
            home = block & home_mask
            t = L2_TAG
            links = 0
            e = oc_lookup[home](block)
            owner = e.owner_tile if e is not None else None
            if owner is not None:
                hops = hops_flat[home * n_tiles + owner]
                if hops:
                    cm[I_FGETS] += 1
                    hm[I_FGETS] += hops
                    t += hops * hop_cycles + A_FGETS
                else:
                    cm[I_LOC] += 1
                links += hops
                served = read_at_l1(owner, tile, block, now)
                assert served is not None, "L2C$ pointed at a non-owner"
                lat, hops2, _ = served
                return t + lat, links + hops2, "unpredicted_fwd"

            entry = l2_lookup[home](block)
            if entry is not None and entry.is_owner:
                if not entry.has_data:
                    t += mem_fetch(home, block)
                    entry.version = mem_version_get(block, 0)
                    entry.has_data = True
                else:
                    sc[_SC_L2HITS] += 1
                    t += L2_DATA
                    bl2_r[home] += 1
                hops = hops_flat[home * n_tiles + tile]
                if hops:
                    cm[I_DOWN] += 1
                    hm[I_DOWN] += hops
                    t += hops * hop_cycles + A_DOWN
                else:
                    cm[I_LOC] += 1
                links += hops
                sharers = entry.sharers & ~(1 << tile)
                state = O_state if sharers else (
                    M_state if entry.dirty else E_state
                )
                sc[_SC_CHECKED] += 1
                if entry.version != version_map[block]:
                    checker.check_read(
                        block, entry.version, where=l1_names[tile]
                    )
                version = entry.version
                dirty = entry.dirty
                demote_to_copy(home, block)
                fill_l1(
                    tile,
                    block,
                    L1Line(
                        state=state,
                        version=version,
                        dirty=dirty,
                        sharers=sharers,
                    ),
                    now,
                    None,
                )
                oc_set_owner(block, tile, now)
                send_hints(block, live_sharers(block, sharers, -1), tile, now)
                return t, links, "unpredicted_home"

            # not on chip: the home keeps a plain copy alongside the grant
            t += mem_fetch(home, block)
            version = mem_version_get(block, 0)
            hops = hops_flat[home * n_tiles + tile]
            if hops:
                cm[I_DOWN] += 1
                hm[I_DOWN] += hops
                t += hops * hop_cycles + A_DOWN
            else:
                cm[I_LOC] += 1
            links += hops
            sc[_SC_CHECKED] += 1
            if version != version_map[block]:
                checker.check_read(block, version, where=l1_names[tile])
            fill_plain_copy(home, block, version, now)
            fill_l1(
                tile,
                block,
                L1Line(state=E_state, version=version),
                now,
                None,
            )
            oc_set_owner(block, tile, now)
            until = now + t
            if until > busy_get(block, 0):
                busy[block] = until
            return t, links, "memory"

        def write_at_owner(owner, tile, block, now, had_copy):
            # mirrors DiCoProtocol._write_at_owner
            home = block & home_mask
            line = l1_peek[owner](block)
            assert line is not None
            t = L1_ACC
            inv_worst = invalidate_sharers(
                owner, tile, block, line.sharers, now, tile
            )
            if owner == tile:
                # upgrade at the owner itself: nothing moves
                t += inv_worst
                commit_write(tile, block, now)
                return t, 0
            hops = hops_flat[owner * n_tiles + tile]
            if had_copy:
                if hops:
                    cm[I_COACK] += 1
                    hm[I_COACK] += hops
                    data_lat = hops * hop_cycles + A_COACK
                else:
                    cm[I_LOC] += 1
                    data_lat = 0
            else:
                if hops:
                    cm[I_DOWN] += 1
                    hm[I_DOWN] += hops
                    data_lat = hops * hop_cycles + A_DOWN
                else:
                    cm[I_LOC] += 1
                    data_lat = 0
            data_hops = hops
            bl1_r[owner] += 1
            pc_update(owner, block, tile)  # Fig. 5: writer becomes supplier
            drop_l1(owner, block)
            hops = hops_flat[owner * n_tiles + home]
            if hops:
                cm[I_CO] += 1
                hm[I_CO] += hops
                co_lat = hops * hop_cycles + A_CO
            else:
                cm[I_LOC] += 1
                co_lat = 0
            hops = hops_flat[home * n_tiles + tile]
            if hops:
                cm[I_COACK] += 1
                hm[I_COACK] += hops
                co_lat += hops * hop_cycles + A_COACK
            else:
                cm[I_LOC] += 1
            oc_set_owner(block, tile, now)
            m = inv_worst
            if data_lat > m:
                m = data_lat
            if co_lat > m:
                m = co_lat
            t += m
            commit_write(tile, block, now)
            return t, data_hops

        write_at_home = dico_write_at_home

        def evict_owner(tile, block, line, now):
            # mirrors DiCoProtocol._evict_owner
            home = block & home_mask
            live = live_sharers(block, line.sharers, tile)
            if live:
                target = live[0]
                hops = hops_flat[tile * n_tiles + target]
                if hops:
                    cm[I_CO] += 1
                    hm[I_CO] += hops
                else:
                    cm[I_LOC] += 1
                tline = l1_peek[target](block)
                assert tline is not None
                tline.state = O_state
                tline.dirty = line.dirty
                tline.sharers = (
                    (line.sharers | (1 << tile))
                    & ~(1 << target)
                    & ~(1 << tile)
                )
                hops = hops_flat[target * n_tiles + home]
                if hops:
                    cm[I_CO] += 1
                    hm[I_CO] += hops
                else:
                    cm[I_LOC] += 1
                hops = hops_flat[home * n_tiles + target]
                if hops:
                    cm[I_COACK] += 1
                    hm[I_COACK] += hops
                else:
                    cm[I_LOC] += 1
                oc_set_owner(block, target, now)
                send_hints(block, live[1:], target, now)
            else:
                put_ownership_home(tile, block, line, now)

        def evict_l1_line(tile, block, line, now):
            # mirrors DiCoProtocol._evict_l1_line
            if line.state is S_state:
                return  # silent eviction
            if line.state in EMO_states:
                evict_owner(tile, block, line, now)

        evict_l2_entry = dico_evict_l2_entry

    elif variant == "providers":

        def supply(supplier, requestor, block, line, now, base_lat,
                   as_provider, category):
            # mirrors DiCoProvidersProtocol._supply
            bl1_r[supplier] += 1
            if not as_provider:
                line.sharers |= 1 << requestor
                if line.state in EM_states:
                    line.state = O_state
            elif line.state in EM_states:
                line.state = O_state
            hops = hops_flat[supplier * n_tiles + requestor]
            if hops:
                cm[I_DATA] += 1
                hm[I_DATA] += hops
                data_lat = hops * hop_cycles + A_DATA
            else:
                cm[I_LOC] += 1
                data_lat = 0
            sc[_SC_CHECKED] += 1
            if line.version != version_map[block]:
                checker.check_read(
                    block, line.version, where=l1_names[requestor]
                )
            new_state = P_state if as_provider else S_state
            fill_l1(
                requestor,
                block,
                L1Line(state=new_state, version=line.version),
                now,
                supplier,
            )
            return base_lat + data_lat, hops, category

        def read_at_l1(holder, requestor, block, now):
            # mirrors DiCoProvidersProtocol._read_at_l1
            line = l1_lookup[holder](block)
            if line is None:
                return None
            local = area_of[holder] == area_of[requestor]

            if line.state in EMO_states:
                t = L1_ACC
                if local:
                    return supply(holder, requestor, block, line, now, t,
                                  False, "pred_owner_hit")
                area_r = area_of[requestor]
                provider = line.propos.get(area_r)
                if provider is not None:
                    hops = hops_flat[holder * n_tiles + provider]
                    if hops:
                        cm[I_FGETS] += 1
                        hm[I_FGETS] += hops
                        fwd_lat = hops * hop_cycles + A_FGETS
                    else:
                        cm[I_LOC] += 1
                        fwd_lat = 0
                    fwd_hops = hops
                    pline = l1_lookup[provider](block)
                    assert pline is not None and pline.state is P_state, (
                        "owner's ProPo must point at a live provider"
                    )
                    t += fwd_lat
                    lat, hops2, _ = supply(
                        provider, requestor, block, pline, now, L1_ACC,
                        False, "unpredicted_provider",
                    )
                    return t + lat, fwd_hops + hops2, "unpredicted_provider"
                # no supplier in the requestor's area: it becomes provider
                line.propos[area_r] = requestor
                return supply(holder, requestor, block, line, now, t,
                              True, "pred_owner_hit")

            if line.state is P_state:
                if local:
                    return supply(holder, requestor, block, line, now,
                                  L1_ACC, False, "pred_provider_hit")
                return None  # provider forwards remote reads to home

            return None

        def read_at_home(tile, block, now, forwarder):
            # mirrors DiCoProvidersProtocol._read_at_home
            home = block & home_mask
            t = L2_TAG
            links = 0
            e = oc_lookup[home](block)
            owner = e.owner_tile if e is not None else None
            if owner is not None:
                hops = hops_flat[home * n_tiles + owner]
                if hops:
                    cm[I_FGETS] += 1
                    hm[I_FGETS] += hops
                    t += hops * hop_cycles + A_FGETS
                else:
                    cm[I_LOC] += 1
                links += hops
                served = read_at_l1(owner, tile, block, now)
                assert served is not None, "L2C$ pointed at a non-owner"
                lat, hops2, cat = served
                if cat == "unpredicted_provider":
                    return t + lat, links + hops2, cat
                return t + lat, links + hops2, "unpredicted_fwd"

            entry = l2_lookup[home](block)
            if entry is not None and entry.is_owner:
                area_r = area_of[tile]
                provider = entry.propos.get(area_r)
                if provider is not None:
                    hops = hops_flat[home * n_tiles + provider]
                    if hops:
                        cm[I_FGETS] += 1
                        hm[I_FGETS] += hops
                        t += hops * hop_cycles + A_FGETS
                    else:
                        cm[I_LOC] += 1
                    links += hops
                    pline = l1_lookup[provider](block)
                    assert pline is not None and pline.state is P_state
                    lat, hops2, _ = supply(
                        provider, tile, block, pline, now, L1_ACC,
                        False, "unpredicted_provider",
                    )
                    return t + lat, links + hops2, "unpredicted_provider"
                # no provider in the area -> requestor becomes owner
                if not entry.has_data:
                    t += mem_fetch(home, block)
                    entry.version = mem_version_get(block, 0)
                    entry.has_data = True
                else:
                    sc[_SC_L2HITS] += 1
                    t += L2_DATA
                    bl2_r[home] += 1
                hops = hops_flat[home * n_tiles + tile]
                if hops:
                    cm[I_DOWN] += 1
                    hm[I_DOWN] += hops
                    t += hops * hop_cycles + A_DOWN
                else:
                    cm[I_LOC] += 1
                links += hops
                sc[_SC_CHECKED] += 1
                if entry.version != version_map[block]:
                    checker.check_read(
                        block, entry.version, where=l1_names[tile]
                    )
                propos = dict(entry.propos)
                propos.pop(area_r, None)
                state = O_state if propos else (
                    M_state if entry.dirty else E_state
                )
                version = entry.version
                dirty = entry.dirty
                demote_to_copy(home, block)
                fill_l1(
                    tile,
                    block,
                    L1Line(
                        state=state,
                        version=version,
                        dirty=dirty,
                        propos=propos,
                    ),
                    now,
                    None,
                )
                oc_set_owner(block, tile, now)
                return t, links, "unpredicted_home"

            # not on chip: the home keeps a plain copy alongside the grant
            t += mem_fetch(home, block)
            version = mem_version_get(block, 0)
            hops = hops_flat[home * n_tiles + tile]
            if hops:
                cm[I_DOWN] += 1
                hm[I_DOWN] += hops
                t += hops * hop_cycles + A_DOWN
            else:
                cm[I_LOC] += 1
            links += hops
            sc[_SC_CHECKED] += 1
            if version != version_map[block]:
                checker.check_read(block, version, where=l1_names[tile])
            fill_plain_copy(home, block, version, now)
            fill_l1(
                tile,
                block,
                L1Line(state=E_state, version=version),
                now,
                None,
            )
            oc_set_owner(block, tile, now)
            until = now + t
            if until > busy_get(block, 0):
                busy[block] = until
            return t, links, "memory"

        def invalidate_tree(orderer, ack_to, block, sharer_mask,
                            propos, now, skip):
            # mirrors DiCoProvidersProtocol._invalidate_tree
            worst = invalidate_sharers(
                orderer, ack_to, block, sharer_mask, now, skip
            )
            requestor_is_provider = False
            for area, provider in list(propos.items()):
                if provider == skip:
                    # the requestor cleans its own area after it
                    # receives the ownership (Sec. IV-A)
                    requestor_is_provider = True
                    continue
                hops = hops_flat[orderer * n_tiles + provider]
                if hops:
                    cm[I_INV] += 1
                    hm[I_INV] += hops
                    inv_lat = hops * hop_cycles + A_INV
                else:
                    cm[I_LOC] += 1
                    inv_lat = 0
                pline = l1_peek[provider](block)
                sub = 0
                if pline is not None:
                    sub = invalidate_sharers(
                        provider, ack_to, block, pline.sharers, now, skip
                    )
                drop_l1(provider, block)
                pc_update(provider, block, ack_to)
                hops = hops_flat[provider * n_tiles + ack_to]
                if hops:
                    cm[I_ACK] += 1
                    hm[I_ACK] += hops
                    pack_lat = hops * hop_cycles + A_ACK
                else:
                    cm[I_LOC] += 1
                    pack_lat = 0
                if pack_lat > sub:
                    sub = pack_lat
                if inv_lat + sub > worst:
                    worst = inv_lat + sub
                sc[_SC_UNICAST] += 1
            return worst, requestor_is_provider

        def invalidate_own_area(tile, block, now):
            # mirrors DiCoProvidersProtocol._invalidate_own_area
            line = l1_peek[tile](block)
            if line is None:
                return 0
            return invalidate_sharers(
                tile, tile, block, line.sharers, now, tile
            )

        def write_at_owner(owner, tile, block, now, had_copy):
            # mirrors DiCoProvidersProtocol._write_at_owner
            home = block & home_mask
            line = l1_peek[owner](block)
            assert line is not None
            t = L1_ACC
            inv_worst, self_inval = invalidate_tree(
                owner, tile, block, line.sharers, line.propos, now, tile
            )
            if owner == tile:
                t += inv_worst
                commit_write(tile, block, now)
                return t, 0
            hops = hops_flat[owner * n_tiles + tile]
            if had_copy:
                if hops:
                    cm[I_COACK] += 1
                    hm[I_COACK] += hops
                    data_lat = hops * hop_cycles + A_COACK
                else:
                    cm[I_LOC] += 1
                    data_lat = 0
            else:
                if hops:
                    cm[I_DOWN] += 1
                    hm[I_DOWN] += hops
                    data_lat = hops * hop_cycles + A_DOWN
                else:
                    cm[I_LOC] += 1
                    data_lat = 0
            data_hops = hops
            bl1_r[owner] += 1
            pc_update(owner, block, tile)
            drop_l1(owner, block)
            hops = hops_flat[owner * n_tiles + home]
            if hops:
                cm[I_CO] += 1
                hm[I_CO] += hops
                co_lat = hops * hop_cycles + A_CO
            else:
                cm[I_LOC] += 1
                co_lat = 0
            hops = hops_flat[home * n_tiles + tile]
            if hops:
                cm[I_COACK] += 1
                hm[I_COACK] += hops
                co_lat += hops * hop_cycles + A_COACK
            else:
                cm[I_LOC] += 1
            oc_set_owner(block, tile, now)
            extra = 0
            if self_inval:
                # Sec. IV-A: the requestor cleans its own area once it
                # holds the ownership (after the data/grant message)
                extra = data_lat + invalidate_own_area(tile, block, now)
            m = inv_worst
            if data_lat > m:
                m = data_lat
            if co_lat > m:
                m = co_lat
            if extra > m:
                m = extra
            t += m
            commit_write(tile, block, now)
            return t, data_hops

        def write_at_home(tile, block, now, had_copy):
            # mirrors DiCoProvidersProtocol._write_at_home
            home = block & home_mask
            t = L2_TAG
            links = 0
            e = oc_lookup[home](block)
            owner = e.owner_tile if e is not None else None
            if owner is not None:
                hops = hops_flat[home * n_tiles + owner]
                if hops:
                    cm[I_FGETX] += 1
                    hm[I_FGETX] += hops
                    t += hops * hop_cycles + A_FGETX
                else:
                    cm[I_LOC] += 1
                links += hops
                lat, hops2 = write_at_owner(owner, tile, block, now, had_copy)
                return t + lat, links + hops2, "unpredicted_fwd"

            entry = l2_lookup[home](block)
            if entry is not None and entry.is_owner:
                inv_worst, self_inval = invalidate_tree(
                    home, tile, block, entry.sharers, entry.propos, now, tile
                )
                hops = hops_flat[home * n_tiles + tile]
                if had_copy:
                    if hops:
                        cm[I_COACK] += 1
                        hm[I_COACK] += hops
                        data_lat = hops * hop_cycles + A_COACK
                    else:
                        cm[I_LOC] += 1
                        data_lat = 0
                    data_hops = hops
                else:
                    if entry.has_data:
                        sc[_SC_L2HITS] += 1
                        bl2_r[home] += 1
                        data_lat = L2_DATA
                    else:
                        data_lat = mem_fetch(home, block)
                    if hops:
                        cm[I_DOWN] += 1
                        hm[I_DOWN] += hops
                        data_lat += hops * hop_cycles + A_DOWN
                    else:
                        cm[I_LOC] += 1
                    data_hops = hops
                extra = 0
                if self_inval:
                    extra = data_lat + invalidate_own_area(tile, block, now)
                demote_to_copy(home, block)
                oc_set_owner(block, tile, now)
                m = inv_worst
                if data_lat > m:
                    m = data_lat
                if extra > m:
                    m = extra
                t += m
                links += data_hops
                commit_write(tile, block, now)
                return t, links, "unpredicted_home"

            t += mem_fetch(home, block)
            hops = hops_flat[home * n_tiles + tile]
            if hops:
                cm[I_DOWN] += 1
                hm[I_DOWN] += hops
                t += hops * hop_cycles + A_DOWN
            else:
                cm[I_LOC] += 1
            links += hops
            oc_set_owner(block, tile, now)
            commit_write(tile, block, now)
            return t, links, "memory"

        def update_propo(block, owner_loc, owner_is_l1, area, provider):
            # mirrors DiCoProvidersProtocol._update_propo
            if owner_is_l1:
                oline = l1_peek[owner_loc](block)
                if oline is None:
                    return
                propos = oline.propos
            else:
                entry = l2_peek[owner_loc](block)
                if entry is None:
                    return
                propos = entry.propos
            if provider is None:
                propos.pop(area, None)
            else:
                propos[area] = provider

        def evict_provider(tile, block, line, now):
            # mirrors DiCoProvidersProtocol._evict_provider (with
            # _locate_owner inlined)
            area = area_of[tile]
            home = block & home_mask
            e = oc_lookup[home](block)
            if e is not None:
                owner_loc = e.owner_tile
                owner_is_l1 = True
            else:
                owner_loc = home
                owner_is_l1 = False
            live = live_sharers(block, line.sharers, tile)
            if live:
                # providership + sharing code to a sharer of the area
                target = live[0]
                hops = hops_flat[tile * n_tiles + target]
                if hops:
                    cm[I_PROV] += 1
                    hm[I_PROV] += hops
                else:
                    cm[I_LOC] += 1
                tline = l1_peek[target](block)
                assert tline is not None
                tline.state = P_state
                tline.sharers = line.sharers & ~(1 << target) & ~(1 << tile)
                hops = hops_flat[target * n_tiles + owner_loc]
                if hops:
                    cm[I_CP] += 1
                    hm[I_CP] += hops
                else:
                    cm[I_LOC] += 1
                hops = hops_flat[owner_loc * n_tiles + target]
                if hops:
                    cm[I_CPACK] += 1
                    hm[I_CPACK] += hops
                else:
                    cm[I_LOC] += 1
                update_propo(block, owner_loc, owner_is_l1, area, target)
                send_hints(block, live[1:], target, now)
            else:
                hops = hops_flat[tile * n_tiles + owner_loc]
                if hops:
                    cm[I_NOPROV] += 1
                    hm[I_NOPROV] += hops
                else:
                    cm[I_LOC] += 1
                update_propo(block, owner_loc, owner_is_l1, area, None)

        def evict_owner(tile, block, line, now):
            # mirrors DiCoProvidersProtocol._evict_owner
            home = block & home_mask
            live = live_sharers(block, line.sharers, tile)
            if live:
                target = live[0]
                hops = hops_flat[tile * n_tiles + target]
                if hops:
                    cm[I_CO] += 1
                    hm[I_CO] += hops
                else:
                    cm[I_LOC] += 1
                tline = l1_peek[target](block)
                assert tline is not None
                tline.state = O_state
                tline.dirty = line.dirty
                tline.sharers = line.sharers & ~(1 << target) & ~(1 << tile)
                tline.propos = dict(line.propos)
                hops = hops_flat[target * n_tiles + home]
                if hops:
                    cm[I_CO] += 1
                    hm[I_CO] += hops
                else:
                    cm[I_LOC] += 1
                hops = hops_flat[home * n_tiles + target]
                if hops:
                    cm[I_COACK] += 1
                    hm[I_COACK] += hops
                else:
                    cm[I_LOC] += 1
                oc_set_owner(block, target, now)
                send_hints(block, live[1:], target, now)
            else:
                entry = put_ownership_home(tile, block, line, now)
                entry.propos = dict(line.propos)

        def evict_l1_line(tile, block, line, now):
            # mirrors DiCoProvidersProtocol._evict_l1_line
            if line.state is S_state:
                return  # silent eviction
            if line.state is P_state:
                evict_provider(tile, block, line, now)
                return
            if line.state in EMO_states:
                evict_owner(tile, block, line, now)

        def evict_l2_entry(home, block, entry, now):
            # mirrors DiCoProvidersProtocol._evict_l2_entry
            if entry.plain_copy:
                return
            worst, _ = invalidate_tree(
                home, home, block, entry.sharers, entry.propos, now, None
            )
            if entry.dirty:
                mem_writeback(home, block, entry.version)
            else:
                mem_version_setdefault(block, entry.version)
            until = now + worst
            if until > busy_get(block, 0):
                busy[block] = until

    elif variant == "arin":
        provider_on_read = proto.provider_on_read
        mesh = proto.network.mesh
        F_INVB = flits[MessageType.INV_BCAST]
        F_UNBB = flits[MessageType.UNBLOCK_BCAST]
        # tree-broadcast latency per source (depth deterministic; the
        # link count is always n_tiles - 1, so the traffic counters
        # batch as plain counts)
        bc_lat_invb = []
        bc_lat_unbb = []
        for s in tiles_range:
            depth = mesh.broadcast_tree(s)[1]
            bc_lat_invb.append(
                depth * hop_cycles + F_INVB - 1 if depth else 0
            )
            bc_lat_unbb.append(
                depth * hop_cycles + F_UNBB - 1 if depth else 0
            )

        def dissolve_ownership(owner, requestor, block, line, now):
            # mirrors DiCoArinProtocol._dissolve_ownership
            home = block & home_mask
            t = L1_ACC
            bl1_r[owner] += 1
            hops = hops_flat[owner * n_tiles + requestor]
            if hops:
                cm[I_DATA] += 1
                hm[I_DATA] += hops
                data_lat = hops * hop_cycles + A_DATA
            else:
                cm[I_LOC] += 1
                data_lat = 0
            data_hops = hops
            sc[_SC_CHECKED] += 1
            if line.version != version_map[block]:
                checker.check_read(
                    block, line.version, where=l1_names[requestor]
                )
            # ship the data to the home unless the home already has it
            entry = l2_peek[home](block)
            if entry is None or not entry.has_data:
                hops = hops_flat[owner * n_tiles + home]
                if hops:
                    cm[I_DATA] += 1
                    hm[I_DATA] += hops
                else:
                    cm[I_LOC] += 1
            propos = {
                area_of[owner]: owner,
                area_of[requestor]: requestor,
            }
            new_entry = L2Line(
                has_data=True,
                dirty=line.dirty,
                version=line.version,
                is_owner=False,
                inter_area=True,
                propos=propos,
            )
            line.state = P_state
            line.dirty = False
            line.sharers = 0
            oc_invalidate[home](block)
            fill_l2(home, block, new_entry, now)
            state = P_state if provider_on_read else S_state
            fill_l1(
                requestor,
                block,
                L1Line(state=state, version=new_entry.version),
                now,
                owner,  # the former owner is now a provider
            )
            return t + data_lat, data_hops, "pred_owner_hit"

        def read_at_l1(holder, requestor, block, now):
            # mirrors DiCoArinProtocol._read_at_l1
            line = l1_lookup[holder](block)
            if line is None:
                return None

            if line.state is P_state:
                # inter-area provider: serves any read
                t = L1_ACC
                bl1_r[holder] += 1
                hops = hops_flat[holder * n_tiles + requestor]
                if hops:
                    cm[I_DATA] += 1
                    hm[I_DATA] += hops
                    data_lat = hops * hop_cycles + A_DATA
                else:
                    cm[I_LOC] += 1
                    data_lat = 0
                sc[_SC_CHECKED] += 1
                if line.version != version_map[block]:
                    checker.check_read(
                        block, line.version, where=l1_names[requestor]
                    )
                state = P_state if provider_on_read else S_state
                fill_l1(
                    requestor,
                    block,
                    L1Line(state=state, version=line.version),
                    now,
                    holder,
                )
                return t + data_lat, hops, "pred_provider_hit"

            if line.state not in EMO_states:
                return None

            if area_of[holder] == area_of[requestor]:
                # intra-area: plain DiCo owner service
                t = L1_ACC
                bl1_r[holder] += 1
                line.sharers |= 1 << requestor
                if line.state in EM_states:
                    line.state = O_state
                hops = hops_flat[holder * n_tiles + requestor]
                if hops:
                    cm[I_DATA] += 1
                    hm[I_DATA] += hops
                    data_lat = hops * hop_cycles + A_DATA
                else:
                    cm[I_LOC] += 1
                    data_lat = 0
                sc[_SC_CHECKED] += 1
                if line.version != version_map[block]:
                    checker.check_read(
                        block, line.version, where=l1_names[requestor]
                    )
                fill_l1(
                    requestor,
                    block,
                    L1Line(state=S_state, version=line.version),
                    now,
                    holder,
                )
                return t + data_lat, hops, "pred_owner_hit"

            # remote-area read: the ownership dissolves (Sec. III-B)
            return dissolve_ownership(holder, requestor, block, line, now)

        def serve_inter_area(home, tile, block, entry, forwarder, now):
            # mirrors DiCoArinProtocol._serve_inter_area
            t = 0
            assert entry.has_data, (
                "inter-area blocks always hold data at the home"
            )
            sc[_SC_L2HITS] += 1
            t += L2_DATA
            bl2_r[home] += 1
            hops = hops_flat[home * n_tiles + tile]
            if hops:
                cm[I_DATA] += 1
                hm[I_DATA] += hops
                t += hops * hop_cycles + A_DATA
            else:
                cm[I_LOC] += 1
            sc[_SC_CHECKED] += 1
            if entry.version != version_map[block]:
                checker.check_read(
                    block, entry.version, where=l1_names[tile]
                )
            area_r = area_of[tile]
            # stale-provider healing (Sec. IV-B)
            if forwarder is not None:
                area_f = area_of[forwarder]
                if entry.propos.get(area_f) == forwarder:
                    del entry.propos[area_f]
            known_provider = entry.propos.get(area_r)
            if known_provider is None:
                entry.propos[area_r] = tile
            supplier = known_provider
            if provider_on_read or known_provider is None:
                state = P_state
            else:
                state = S_state
            fill_l1(
                tile,
                block,
                L1Line(state=state, version=entry.version),
                now,
                supplier,
            )
            return t, hops, "unpredicted_home"

        def serve_home_owned(home, tile, block, entry, now):
            # mirrors DiCoArinProtocol._serve_home_owned
            t = 0
            links = 0
            if entry.sharers == 0 and entry.owner_area is None:
                # no copies anywhere: ownership moves to the requestor
                if not entry.has_data:
                    t += mem_fetch(home, block)
                    entry.version = mem_version_get(block, 0)
                    entry.has_data = True
                else:
                    sc[_SC_L2HITS] += 1
                    t += L2_DATA
                    bl2_r[home] += 1
                hops = hops_flat[home * n_tiles + tile]
                if hops:
                    cm[I_DOWN] += 1
                    hm[I_DOWN] += hops
                    t += hops * hop_cycles + A_DOWN
                else:
                    cm[I_LOC] += 1
                links += hops
                sc[_SC_CHECKED] += 1
                if entry.version != version_map[block]:
                    checker.check_read(
                        block, entry.version, where=l1_names[tile]
                    )
                state = M_state if entry.dirty else E_state
                version = entry.version
                dirty = entry.dirty
                demote_to_copy(home, block)
                fill_l1(
                    tile,
                    block,
                    L1Line(state=state, version=version, dirty=dirty),
                    now,
                    None,
                )
                oc_set_owner(block, tile, now)
                return t, links, "unpredicted_home"

            if entry.owner_area is None or area_of[tile] == entry.owner_area:
                # same-area read: home keeps ownership, tracks the sharer
                if not entry.has_data:
                    t += mem_fetch(home, block)
                    entry.version = mem_version_get(block, 0)
                    entry.has_data = True
                else:
                    sc[_SC_L2HITS] += 1
                    t += L2_DATA
                    bl2_r[home] += 1
                hops = hops_flat[home * n_tiles + tile]
                if hops:
                    cm[I_DATA] += 1
                    hm[I_DATA] += hops
                    t += hops * hop_cycles + A_DATA
                else:
                    cm[I_LOC] += 1
                links += hops
                sc[_SC_CHECKED] += 1
                if entry.version != version_map[block]:
                    checker.check_read(
                        block, entry.version, where=l1_names[tile]
                    )
                entry.sharers |= 1 << tile
                entry.owner_area = area_of[tile]
                fill_l1(
                    tile,
                    block,
                    L1Line(state=S_state, version=entry.version),
                    now,
                    None,
                )
                return t, links, "unpredicted_home"

            # remote-area read of a home-owned block: becomes inter-area
            if not entry.has_data:
                t += mem_fetch(home, block)
                entry.version = mem_version_get(block, 0)
                entry.has_data = True
            entry.inter_area = True
            entry.is_owner = False
            entry.owner_area = None
            entry.sharers = 0
            entry.propos = {area_of[tile]: tile}
            sc[_SC_L2HITS] += 1
            t += L2_DATA
            bl2_r[home] += 1
            hops = hops_flat[home * n_tiles + tile]
            if hops:
                cm[I_DATA] += 1
                hm[I_DATA] += hops
                t += hops * hop_cycles + A_DATA
            else:
                cm[I_LOC] += 1
            links += hops
            sc[_SC_CHECKED] += 1
            if entry.version != version_map[block]:
                checker.check_read(
                    block, entry.version, where=l1_names[tile]
                )
            fill_l1(
                tile,
                block,
                L1Line(state=P_state, version=entry.version),
                now,
                None,
            )
            return t, links, "unpredicted_home"

        def read_at_home(tile, block, now, forwarder):
            # mirrors DiCoArinProtocol._read_at_home
            home = block & home_mask
            t = L2_TAG
            links = 0
            e = oc_lookup[home](block)
            owner = e.owner_tile if e is not None else None
            if owner is not None:
                hops = hops_flat[home * n_tiles + owner]
                if hops:
                    cm[I_FGETS] += 1
                    hm[I_FGETS] += hops
                    t += hops * hop_cycles + A_FGETS
                else:
                    cm[I_LOC] += 1
                links += hops
                served = read_at_l1(owner, tile, block, now)
                assert served is not None, "L2C$ pointed at a non-owner"
                lat, hops2, _ = served
                return t + lat, links + hops2, "unpredicted_fwd"

            entry = l2_lookup[home](block)
            if entry is not None and entry.inter_area:
                return serve_inter_area(home, tile, block, entry,
                                        forwarder, now)
            if entry is not None and entry.is_owner:
                return serve_home_owned(home, tile, block, entry, now)

            # not on chip: the home keeps a plain copy alongside the grant
            t += mem_fetch(home, block)
            version = mem_version_get(block, 0)
            hops = hops_flat[home * n_tiles + tile]
            if hops:
                cm[I_DOWN] += 1
                hm[I_DOWN] += hops
                t += hops * hop_cycles + A_DOWN
            else:
                cm[I_LOC] += 1
            links += hops
            sc[_SC_CHECKED] += 1
            if version != version_map[block]:
                checker.check_read(block, version, where=l1_names[tile])
            fill_plain_copy(home, block, version, now)
            fill_l1(
                tile,
                block,
                L1Line(state=E_state, version=version),
                now,
                None,
            )
            oc_set_owner(block, tile, now)
            until = now + t
            if until > busy_get(block, 0):
                busy[block] = until
            return t, links, "memory"

        def write_at_owner(owner, tile, block, now, had_copy):
            # inherited from DiCoProtocol._write_at_owner
            home = block & home_mask
            line = l1_peek[owner](block)
            assert line is not None
            t = L1_ACC
            inv_worst = invalidate_sharers(
                owner, tile, block, line.sharers, now, tile
            )
            if owner == tile:
                t += inv_worst
                commit_write(tile, block, now)
                return t, 0
            hops = hops_flat[owner * n_tiles + tile]
            if had_copy:
                if hops:
                    cm[I_COACK] += 1
                    hm[I_COACK] += hops
                    data_lat = hops * hop_cycles + A_COACK
                else:
                    cm[I_LOC] += 1
                    data_lat = 0
            else:
                if hops:
                    cm[I_DOWN] += 1
                    hm[I_DOWN] += hops
                    data_lat = hops * hop_cycles + A_DOWN
                else:
                    cm[I_LOC] += 1
                    data_lat = 0
            data_hops = hops
            bl1_r[owner] += 1
            pc_update(owner, block, tile)
            drop_l1(owner, block)
            hops = hops_flat[owner * n_tiles + home]
            if hops:
                cm[I_CO] += 1
                hm[I_CO] += hops
                co_lat = hops * hop_cycles + A_CO
            else:
                cm[I_LOC] += 1
                co_lat = 0
            hops = hops_flat[home * n_tiles + tile]
            if hops:
                cm[I_COACK] += 1
                hm[I_COACK] += hops
                co_lat += hops * hop_cycles + A_COACK
            else:
                cm[I_LOC] += 1
            oc_set_owner(block, tile, now)
            m = inv_worst
            if data_lat > m:
                m = data_lat
            if co_lat > m:
                m = co_lat
            t += m
            commit_write(tile, block, now)
            return t, data_hops

        def broadcast_write(home, tile, block, entry, had_copy, now):
            # mirrors DiCoArinProtocol._broadcast_write (three-phase)
            sc[_SC_BCAST] += 1
            # phase 1: the home broadcasts the invalidation
            cb[0] += 1
            phase1_lat = bc_lat_invb[home]
            # phase 2: every L1 acknowledges to the requestor
            ack_worst = 0
            for t_id in tiles_range:
                l1_lookup[t_id](block, False)  # tag probe energy
                if t_id != tile:
                    line = drop_l1(t_id, block)
                    if line is not None:
                        pc_update(t_id, block, tile)
                hops = hops_flat[t_id * n_tiles + tile]
                if hops:
                    cm[I_ACK] += 1
                    hm[I_ACK] += hops
                    ack_lat = hops * hop_cycles + A_ACK
                else:
                    cm[I_LOC] += 1
                    ack_lat = 0
                if ack_lat > ack_worst:
                    ack_worst = ack_lat
            # data from the home (inter-area blocks always have it there)
            hops = hops_flat[home * n_tiles + tile]
            if had_copy:
                if hops:
                    cm[I_COACK] += 1
                    hm[I_COACK] += hops
                    data_lat = hops * hop_cycles + A_COACK
                else:
                    cm[I_LOC] += 1
                    data_lat = 0
                data_hops = hops
            else:
                sc[_SC_L2HITS] += 1
                bl2_r[home] += 1
                if hops:
                    cm[I_DOWN] += 1
                    hm[I_DOWN] += hops
                    data_lat = L2_DATA + hops * hop_cycles + A_DOWN
                else:
                    cm[I_LOC] += 1
                    data_lat = L2_DATA
                data_hops = hops
            latency = phase1_lat + ack_worst
            if data_lat > latency:
                latency = data_lat
            # phase 3: the requestor broadcasts the unblock
            cb[1] += 1
            phase3_lat = bc_lat_unbb[tile]
            demote_to_copy(home, block)
            oc_set_owner(block, tile, now)
            commit_write(tile, block, now)
            until = now + latency + phase3_lat
            if until > busy_get(block, 0):
                busy[block] = until
            return latency, data_hops

        def write_at_home(tile, block, now, had_copy):
            # mirrors DiCoArinProtocol._write_at_home
            home = block & home_mask
            entry = l2_peek[home](block)
            if entry is not None and entry.inter_area:
                lat, links2 = broadcast_write(
                    home, tile, block, entry, had_copy, now
                )
                return L2_TAG + lat, links2, "unpredicted_home"
            if entry is not None and entry.is_owner:
                # home-owned: precise area-local invalidation
                t = L2_TAG
                inv_worst = invalidate_sharers(
                    home, tile, block, entry.sharers, now, tile
                )
                hops = hops_flat[home * n_tiles + tile]
                if had_copy:
                    if hops:
                        cm[I_COACK] += 1
                        hm[I_COACK] += hops
                        data_lat = hops * hop_cycles + A_COACK
                    else:
                        cm[I_LOC] += 1
                        data_lat = 0
                    data_hops = hops
                else:
                    if entry.has_data:
                        sc[_SC_L2HITS] += 1
                        bl2_r[home] += 1
                        data_lat = L2_DATA
                    else:
                        data_lat = mem_fetch(home, block)
                    if hops:
                        cm[I_DOWN] += 1
                        hm[I_DOWN] += hops
                        data_lat += hops * hop_cycles + A_DOWN
                    else:
                        cm[I_LOC] += 1
                    data_hops = hops
                demote_to_copy(home, block)
                oc_set_owner(block, tile, now)
                t += inv_worst if inv_worst > data_lat else data_lat
                commit_write(tile, block, now)
                return t, data_hops, "unpredicted_home"
            return dico_write_at_home(tile, block, now, had_copy)

        def evict_owner(tile, block, line, now):
            # mirrors DiCoArinProtocol._evict_owner
            home = block & home_mask
            live = live_sharers(block, line.sharers, tile)
            if live:
                target = live[0]
                hops = hops_flat[tile * n_tiles + target]
                if hops:
                    cm[I_CO] += 1
                    hm[I_CO] += hops
                else:
                    cm[I_LOC] += 1
                tline = l1_peek[target](block)
                assert tline is not None
                tline.state = O_state
                tline.dirty = line.dirty
                tline.sharers = line.sharers & ~(1 << target) & ~(1 << tile)
                hops = hops_flat[target * n_tiles + home]
                if hops:
                    cm[I_CO] += 1
                    hm[I_CO] += hops
                else:
                    cm[I_LOC] += 1
                hops = hops_flat[home * n_tiles + target]
                if hops:
                    cm[I_COACK] += 1
                    hm[I_COACK] += hops
                else:
                    cm[I_LOC] += 1
                oc_set_owner(block, target, now)
                send_hints(block, live[1:], target, now)
            else:
                hops = hops_flat[tile * n_tiles + home]
                if hops:
                    cm[I_PUT] += 1
                    hm[I_PUT] += hops
                else:
                    cm[I_LOC] += 1
                oc_invalidate[home](block)
                fill_l2(
                    home,
                    block,
                    L2Line(
                        has_data=True,
                        dirty=line.dirty,
                        version=line.version,
                        is_owner=True,
                        sharers=0,
                        owner_area=None,
                    ),
                    now,
                )

        def evict_l1_line(tile, block, line, now):
            # mirrors DiCoArinProtocol._evict_l1_line
            if line.state is S_state or line.state is P_state:
                return  # both silent in DiCo-Arin
            if line.state in EMO_states:
                evict_owner(tile, block, line, now)

        def evict_l2_entry(home, block, entry, now):
            # mirrors DiCoArinProtocol._evict_l2_entry
            if entry.inter_area:
                # three-phase broadcast, acks converge on the home
                sc[_SC_BCAST] += 1
                cb[0] += 1
                phase1_lat = bc_lat_invb[home]
                ack_worst = 0
                for t_id in tiles_range:
                    l1_lookup[t_id](block, False)
                    drop_l1(t_id, block)
                    hops = hops_flat[t_id * n_tiles + home]
                    if hops:
                        cm[I_ACK] += 1
                        hm[I_ACK] += hops
                        ack_lat = hops * hop_cycles + A_ACK
                    else:
                        cm[I_LOC] += 1
                        ack_lat = 0
                    if ack_lat > ack_worst:
                        ack_worst = ack_lat
                cb[1] += 1
                phase3_lat = bc_lat_unbb[home]
                if entry.dirty:
                    mem_writeback(home, block, entry.version)
                else:
                    mem_version_setdefault(block, entry.version)
                until = now + phase1_lat + ack_worst + phase3_lat
                if until > busy_get(block, 0):
                    busy[block] = until
                return
            dico_evict_l2_entry(home, block, entry, now)

    else:  # pragma: no cover - compile-time misuse
        raise ValueError(f"unknown DiCo-family variant {variant!r}")

    # --- the inherited DiCoProtocol skeleton --------------------------

    def handle_read_miss(tile, block, now):
        # mirrors DiCoProtocol._handle_read_miss (with the prediction
        # lookup inlined)
        t = L1_TAG_L1C
        links = 0
        pll[tile] += 1
        predicted = pc_resident_get[tile](block)
        if predicted is None:
            predicted = pc_array_lookup[tile](block)
        category = None

        if predicted is not None:
            plh[tile] += 1
            hops = hops_flat[tile * n_tiles + predicted]
            if hops:
                cm[I_GETS] += 1
                hm[I_GETS] += hops
                t += hops * hop_cycles + A_GETS
            else:
                cm[I_LOC] += 1
            links += hops
            served = read_at_l1(predicted, tile, block, now)
            if served is not None:
                lat, hops2, cat = served
                return t + lat, links + hops2, cat
            # misprediction: forward to the home
            category = "pred_miss"
            home = block & home_mask
            hops = hops_flat[predicted * n_tiles + home]
            if hops:
                cm[I_FGETS] += 1
                hm[I_FGETS] += hops
                t += hops * hop_cycles + A_FGETS
            else:
                cm[I_LOC] += 1
            links += hops
        else:
            home = block & home_mask
            hops = hops_flat[tile * n_tiles + home]
            if hops:
                cm[I_GETS] += 1
                hm[I_GETS] += hops
                t += hops * hop_cycles + A_GETS
            else:
                cm[I_LOC] += 1
            links += hops

        lat, hops2, cat = read_at_home(tile, block, now, predicted)
        return t + lat, links + hops2, (category or cat)

    def handle_write_miss(tile, block, now, had_copy):
        # mirrors DiCoProtocol._handle_write_miss (with the prediction
        # lookup inlined)
        t = L1_TAG_L1C
        links = 0

        own = l1_peek[tile](block)
        if own is not None and own.state in EMO_states:
            # we are the owner: invalidate our sharers directly
            lat, hops2 = write_at_owner(tile, tile, block, now, True)
            t += lat
            links += hops2
            until = now + t
            if until > busy_get(block, 0):
                busy[block] = until
            return t, links, "pred_owner_hit"

        pll[tile] += 1
        predicted = pc_resident_get[tile](block)
        if predicted is None:
            predicted = pc_array_lookup[tile](block)
        category = None

        if predicted is not None:
            plh[tile] += 1
            hops = hops_flat[tile * n_tiles + predicted]
            if hops:
                cm[I_GETX] += 1
                hm[I_GETX] += hops
                t += hops * hop_cycles + A_GETX
            else:
                cm[I_LOC] += 1
            links += hops
            line = l1_lookup[predicted](block)
            if line is not None and line.state in EMO_states:
                lat, hops2 = write_at_owner(
                    predicted, tile, block, now, had_copy
                )
                t += lat
                links += hops2
                until = now + t
                if until > busy_get(block, 0):
                    busy[block] = until
                return t, links, "pred_owner_hit"
            category = "pred_miss"
            home = block & home_mask
            hops = hops_flat[predicted * n_tiles + home]
            if hops:
                cm[I_FGETX] += 1
                hm[I_FGETX] += hops
                t += hops * hop_cycles + A_FGETX
            else:
                cm[I_LOC] += 1
            links += hops
        else:
            home = block & home_mask
            hops = hops_flat[tile * n_tiles + home]
            if hops:
                cm[I_GETX] += 1
                hm[I_GETX] += hops
                t += hops * hop_cycles + A_GETX
            else:
                cm[I_LOC] += 1
            links += hops

        lat, hops2, cat = write_at_home(tile, block, now, had_copy)
        t += lat
        links += hops2
        until = now + t
        if until > busy_get(block, 0):
            busy[block] = until
        return t, links, (category or cat)

    # --- flush ---------------------------------------------------------

    stats_pairs = tuple(
        (i, _UNICAST_TYPES[i], msg_flits[i]) for i in range(_N_UNICAST)
    )
    T_INVB = MessageType.INV_BCAST
    T_UNBB = MessageType.UNBLOCK_BCAST
    F_INVB_ALL = flits[T_INVB]
    F_UNBB_ALL = flits[T_UNBB]
    n_links_all = n_tiles - 1
    fb_links_all = n_links_all if n_links_all else 1

    def flush():
        """Add the batched counters into the current stats and zero them."""
        st = proto.stats
        st.l2_data_hits += sc[_SC_L2HITS]
        st.unicast_invalidations += sc[_SC_UNICAST]
        st.memory_fetches += sc[_SC_MEMFETCH]
        st.l2_misses += sc[_SC_L2MISS]
        st.writebacks += sc[_SC_WB]
        st.broadcast_invalidations += sc[_SC_BCAST]
        proto._l1_evictions.evictions += sc[_SC_L1EV]
        proto._l2_evictions.evictions += sc[_SC_L2EV]
        checker.reads_checked += sc[_SC_CHECKED]
        checker.writes_committed += sc[_SC_COMMITS]
        memctl.accesses += sc[_SC_MEMACC]
        for j in range(_N_SC):
            sc[j] = 0
        net = proto.network.stats
        net.local_messages += cm[I_LOC]
        cm[I_LOC] = 0
        by_type = net.by_type
        flits_by_type = net.flits_by_type
        msgs = flit_trav = hops_total = 0
        for i, mt, fl in stats_pairs:
            cnt = cm[i]
            if cnt:
                by_type[mt] += cnt
                flits_by_type[mt] += cnt * fl
                msgs += cnt
                hsum = hm[i]
                flit_trav += fl * hsum
                hops_total += hsum
                cm[i] = 0
                hm[i] = 0
        net.messages += msgs
        net.flit_link_traversals += flit_trav
        net.router_traversals += hops_total
        net.routing_events += msgs
        b0, b1 = cb
        if b0 or b1:
            nb = b0 + b1
            net.messages += nb
            net.broadcasts += nb
            if b0:
                by_type[T_INVB] += b0
                flits_by_type[T_INVB] += b0 * F_INVB_ALL * fb_links_all
                net.flit_link_traversals += b0 * F_INVB_ALL * n_links_all
            if b1:
                by_type[T_UNBB] += b1
                flits_by_type[T_UNBB] += b1 * F_UNBB_ALL * fb_links_all
                net.flit_link_traversals += b1 * F_UNBB_ALL * n_links_all
            net.router_traversals += nb * n_links_all
            net.routing_events += nb * n_links_all
            cb[0] = cb[1] = 0
        for i in tiles_range:
            v = bl1_r[i]
            if v:
                l1s[i].stats.data_reads += v
                bl1_r[i] = 0
            v = bl1_w[i]
            if v:
                l1s[i].stats.data_writes += v
                bl1_w[i] = 0
            v = bl2_r[i]
            if v:
                l2s[i].stats.data_reads += v
                bl2_r[i] = 0
            v = bl2_w[i]
            if v:
                l2s[i].stats.data_writes += v
                bl2_w[i] = 0
            v = bl2_tw[i]
            if v:
                l2s[i].stats.tag_writes += v
                bl2_tw[i] = 0
            v = pll[i]
            if v:
                l1cs[i].stats.lookups += v
                pll[i] = 0
            v = plh[i]
            if v:
                l1cs[i].stats.hits += v
                plh[i] = 0
            v = plu[i]
            if v:
                l1cs[i].stats.updates += v
                plu[i] = 0

    proto._handle_read_miss = handle_read_miss  # type: ignore[method-assign]
    proto._handle_write_miss = handle_write_miss  # type: ignore[method-assign]
    proto._evict_l1_line = evict_l1_line  # type: ignore[method-assign]
    proto._evict_l2_entry = evict_l2_entry  # type: ignore[method-assign]
    return flush
