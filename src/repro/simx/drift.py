"""Source-drift guard for the array engine's flattened copies.

The simx layer *re-implements* object-engine logic — the issue loop
inlines ``CoherenceProtocol.access``, the fast helpers re-state the
``SetAssocCache`` methods, and the per-protocol handler compilers
flatten the five protocols' entire miss-transaction trees into
closures.  That duplication is the whole speedup, and it is safe only
while the originals do not change: an edit to, say,
``DiCoProtocol._write_at_owner`` that is not mirrored into
``handlers_dico`` would silently diverge the engines the moment the
identity suite's coverage has a gap.

This module pins a fingerprint for every object-engine callable whose
*logic* is duplicated somewhere under ``src/repro/simx/`` (callables
the compiled code merely calls by reference cannot drift and are not
pinned).  The fingerprint is a sha256 over the ``ast.dump`` of the
callable's parsed source — stable across comment and whitespace edits,
changed by any edit that could alter behaviour.  The guard test
(``tests/integration/test_simx_drift.py``) compares the live
fingerprints against ``drift_pins.json``; a mismatch means: re-check
the simx mirror of that callable, then re-pin with::

    PYTHONPATH=src python -m repro.simx.drift --update

Re-pinning without re-checking defeats the guard — the identity matrix
and ``repro verify --engine both`` are the behavioural backstop, but
they sample; this guard is the tripwire that says *look*.
"""

from __future__ import annotations

import ast
import hashlib
import inspect
import json
import textwrap
from pathlib import Path
from typing import Callable, Dict

__all__ = [
    "MIRRORED",
    "PINS_PATH",
    "fingerprint",
    "current_fingerprints",
    "load_pins",
    "write_pins",
    "diff_pins",
]

PINS_PATH = Path(__file__).with_name("drift_pins.json")


def _names(owner: str, *methods: str) -> Dict[str, str]:
    return {f"{owner}.{m}": owner for m in methods}


#: dotted name -> why it is pinned.  Every entry's logic has a
#: flattened copy in simx; the comment names where.
MIRRORED: Dict[str, str] = {}

# engine.py runner: access() inline, issue-loop discipline, LRU touch
MIRRORED.update(_names(
    "repro.core.protocols.base.CoherenceProtocol",
    "access",
))
MIRRORED.update(_names("repro.sim.chip.Core", "_issue_fast"))
MIRRORED.update(_names("repro.sim.chip.Chip", "run_cycles", "run_ops"))
MIRRORED.update(_names(
    "repro.sim.engine.Simulator", "run", "_run_watched", "schedule_fast",
))
MIRRORED.update(_names(
    "repro.workloads.generator.ConsolidatedWorkload", "trace",
))

# helpers.py: fast cache methods + protocol glue
MIRRORED.update(_names(
    "repro.cache.cache.SetAssocCache",
    "lookup", "peek", "victim_for", "insert", "invalidate", "displace",
))
MIRRORED.update(_names("repro.cache.replacement.LRU", "touch", "victim"))
MIRRORED.update(_names(
    "repro.core.checker.CoherenceChecker", "check_read", "commit_write",
))
MIRRORED.update(_names(
    "repro.core.protocols.base.CoherenceProtocol",
    "msg", "bcast", "set_busy", "mem_fetch", "mem_writeback",
    "fill_l1", "drop_l1", "fill_l2", "home_of", "_flits",
    "_owner_upgrade_is_local",
))
MIRRORED["repro.core.protocols.base.iter_bits"] = "base"
MIRRORED.update(_names(
    "repro.noc.network.Network", "send", "broadcast",
))
MIRRORED.update(_names(
    "repro.noc.topology.Mesh", "hops", "unicast_latency", "broadcast_latency",
))

# handlers_directory.py
MIRRORED.update(_names(
    "repro.core.protocols.directory.DirectoryProtocol",
    "_dir_lookup", "_dir_drop", "_dircache_insert",
    "_handle_read_miss", "_fill_shared", "_handle_write_miss",
    "_evict_l1_line", "_evict_l2_entry", "_invalidate_all_copies",
))

# handlers_dico.py (shared family compiler: dico / providers / arin)
MIRRORED.update(_names(
    "repro.core.protocols.dico.DiCoProtocol",
    "_live_sharers", "_send_hints", "_owner_tile", "_set_l1_owner",
    "_clear_l1_owner", "_fill_plain_copy", "_demote_to_copy",
    "_put_ownership_home", "_forced_relinquish", "_install_home_ownership",
    "_handle_read_miss", "_read_at_l1", "_read_at_home",
    "_handle_write_miss", "_write_at_owner", "_write_at_home",
    "_invalidate_sharers", "_commit_write",
    "_evict_l1_line", "_evict_owner", "_evict_l2_entry",
))
MIRRORED.update(_names(
    "repro.core.protocols.providers.DiCoProvidersProtocol",
    "_read_at_l1", "_supply", "_read_at_home", "_write_at_owner",
    "_invalidate_tree", "_invalidate_own_area", "_write_at_home",
    "_evict_l1_line", "_locate_owner", "_evict_provider", "_update_propo",
    "_evict_owner", "_forced_relinquish", "_evict_l2_entry",
))
MIRRORED.update(_names(
    "repro.core.protocols.arin.DiCoArinProtocol",
    "_read_at_l1", "_dissolve_ownership", "_read_at_home",
    "_serve_inter_area", "_serve_home_owned", "_write_at_home",
    "_broadcast_write", "_evict_l1_line", "_evict_owner",
    "_forced_relinquish", "_evict_l2_entry",
))
MIRRORED.update(_names(
    "repro.core.predcache.PredictionCache",
    "predict", "peek", "update", "forget", "block_cached",
    "block_evicted", "resident_prediction",
))
MIRRORED.update(_names(
    "repro.core.ownercache.OwnerCache",
    "owner_of", "peek_owner", "set_owner", "clear",
))

# handlers_vh.py
MIRRORED.update(_names(
    "repro.core.protocols.vh.VirtualHierarchyProtocol",
    "domain_of", "dynamic_home", "_l2dir", "_l2dir_set", "_l2dir_drop",
    "_domain_entry", "_install_domain_copy", "_drop_domain",
    "_handle_read_miss", "_read_at_global", "_handle_write_miss",
    "_drop_domain_sharers", "_evict_l1_line", "_evict_l2_entry",
    "_global_invalidate",
))
MIRRORED.update(_names("repro.core.area.AreaMap", "area_of", "tiles_of"))


def _resolve(dotted: str) -> Callable:
    """``pkg.mod.Class.meth`` / ``pkg.mod.func`` -> the callable."""
    parts = dotted.split(".")
    for split in range(len(parts) - 1, 0, -1):
        mod_name = ".".join(parts[:split])
        try:
            module = __import__(mod_name, fromlist=["_"])
        except ImportError:
            continue
        obj = module
        try:
            for attr in parts[split:]:
                obj = getattr(obj, attr)
        except AttributeError:
            break
        return obj
    raise LookupError(f"cannot resolve {dotted!r}")


def fingerprint(fn: Callable) -> str:
    """sha256 over the ast-normalized source of ``fn``.

    Normalizing through ``ast.parse``/``ast.dump`` makes the pin
    insensitive to comments, blank lines and re-wrapping — only edits
    that change the parsed structure (i.e. could change behaviour)
    change the fingerprint.
    """
    source = textwrap.dedent(inspect.getsource(fn))
    tree = ast.parse(source)
    return hashlib.sha256(ast.dump(tree).encode()).hexdigest()


def current_fingerprints() -> Dict[str, str]:
    """Fingerprint every registered original, sorted by name."""
    return {name: fingerprint(_resolve(name)) for name in sorted(MIRRORED)}


def load_pins(path: Path = PINS_PATH) -> Dict[str, str]:
    with open(path) as fh:
        return json.load(fh)


def write_pins(path: Path = PINS_PATH) -> Dict[str, str]:
    pins = current_fingerprints()
    with open(path, "w") as fh:
        json.dump(pins, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return pins


def diff_pins(path: Path = PINS_PATH) -> Dict[str, str]:
    """Mismatches between the live tree and the pins.

    Returns ``{dotted_name: problem}`` — empty means no drift.  Names
    present only in the pins file ("vanished") matter as much as
    changed ones: a deleted or renamed original usually means the simx
    mirror points at dead logic.
    """
    pinned = load_pins(path)
    current = current_fingerprints()
    problems: Dict[str, str] = {}
    for name, digest in current.items():
        want = pinned.get(name)
        if want is None:
            problems[name] = "not pinned (new mirror? run --update)"
        elif want != digest:
            problems[name] = "source changed since the simx mirror was written"
    for name in pinned:
        if name not in current:
            problems[name] = "pinned but no longer registered/resolvable"
    return problems


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.simx.drift",
        description="check (or re-pin) the array engine's source-drift guard",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite drift_pins.json from the current tree "
        "(only after re-checking the simx mirrors!)",
    )
    args = parser.parse_args(argv)
    if args.update:
        pins = write_pins()
        print(f"pinned {len(pins)} fingerprints -> {PINS_PATH}")
        return 0
    problems = diff_pins()
    if not problems:
        print(f"ok: {len(MIRRORED)} mirrored originals match their pins")
        return 0
    for name, problem in sorted(problems.items()):
        print(f"DRIFT {name}: {problem}")
    print(
        "\nre-check the corresponding src/repro/simx/ mirror(s), then: "
        "PYTHONPATH=src python -m repro.simx.drift --update"
    )
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
