"""Integer-dispatch tables compiled from a protocol instance.

The array engine's inline hit path must take exactly the decisions
:meth:`CoherenceProtocol.access` takes, for every protocol, without
calling it.  This module extracts those decisions *from the protocol
classes themselves* into flat integer tables at chip-construction time:

* the write-path action per L1 state (silent upgrade / owner check /
  upgrade miss), resolved per protocol — a protocol that overrides
  ``_owner_upgrade_is_local`` (DiCo-Arin) gets the owner check routed
  through its method, the others resolve it in-table,
* the per-message-type flit sizes, resolved eagerly for the whole
  vocabulary so the fast ``msg`` helper never takes the memoization
  miss path,
* the hot scalar constants (hop table, home mask, block shift, hit
  latency) already flattened by the object model, re-exposed in one
  place for the runner closures.

Nothing here duplicates protocol *logic*: a new state or a changed
override shows up in the tables automatically because they are derived
from the live class, and any drift is caught by the engine-identity
determinism tests.
"""

from __future__ import annotations

from typing import Dict, List

from ..core.messages import MessageType, flits_for
from ..core.protocols.base import CoherenceProtocol
from ..core.states import L1State

__all__ = [
    "W_SILENT",
    "W_OWNER_CHECK",
    "W_UPGRADE_MISS",
    "STATE_CODE",
    "all_message_types",
    "ProtocolTables",
]

# write-path actions for a hit on a valid line (``access`` semantics):
#: upgrade silently — the copy is exclusive (E/M)
W_SILENT = 0
#: owner with empty sharing code — silent iff ``_owner_upgrade_is_local``
W_OWNER_CHECK = 1
#: copy without ownership (S/P) — goes through ``_handle_write_miss``
W_UPGRADE_MISS = 2

#: stable integer code per L1 state (enum definition order)
STATE_CODE: Dict[L1State, int] = {s: i for i, s in enumerate(L1State)}


def all_message_types() -> List[str]:
    """Every message-type constant defined on :class:`MessageType`."""
    return [
        value
        for name, value in vars(MessageType).items()
        if not name.startswith("_") and isinstance(value, str)
    ]


class ProtocolTables:
    """Dispatch tables and hot constants for one protocol instance."""

    __slots__ = (
        "write_action",
        "write_action_by_code",
        "o_upgrade_unconditional",
        "flits",
        "hops_flat",
        "n_tiles",
        "hop_cycles",
        "home_mask",
        "block_shift",
        "max_addr",
        "l1_hit_latency",
    )

    def __init__(self, proto: CoherenceProtocol) -> None:
        # --- write-path dispatch --------------------------------------
        # I is unreachable here (an invalid line goes down the miss
        # path before dispatch); mapped to the miss action for safety.
        action = {
            L1State.I: W_UPGRADE_MISS,
            L1State.S: W_UPGRADE_MISS,
            L1State.E: W_SILENT,
            L1State.M: W_SILENT,
            L1State.O: W_OWNER_CHECK,
            L1State.P: W_UPGRADE_MISS,
        }
        self.write_action: Dict[L1State, int] = action
        self.write_action_by_code: List[int] = [
            action[s] for s in L1State
        ]
        # a protocol that keeps the base ``_owner_upgrade_is_local``
        # (constant True) resolves the owner check in-table; an override
        # (DiCo-Arin) is consulted per access
        self.o_upgrade_unconditional = (
            type(proto)._owner_upgrade_is_local
            is CoherenceProtocol._owner_upgrade_is_local
        )

        # --- message sizes --------------------------------------------
        noc = proto.config.noc
        self.flits: Dict[str, int] = {
            mt: flits_for(mt, noc.control_flits, noc.data_flits)
            for mt in all_message_types()
        }
        # share the protocol's own memo so object-path calls that race
        # ahead of the fast helper see the same (deterministic) values
        proto._flits_by_type.update(self.flits)

        # --- hot constants --------------------------------------------
        net = proto.network
        self.hops_flat = net._hops_flat
        self.n_tiles = net._n_tiles
        self.hop_cycles = net._hop_cycles
        self.home_mask = proto._home_mask
        self.block_shift = proto._block_shift
        self.max_addr = proto._max_addr
        self.l1_hit_latency = proto._l1_hit_latency
