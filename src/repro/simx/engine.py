"""The array engine's chip driver: compiled per-core issue runners.

:class:`ArrayChip` is a drop-in :class:`~repro.sim.chip.Chip` whose
cores issue through closures compiled by :func:`make_runner` instead of
the generic ``Core._issue_fast`` / ``protocol.access`` pair.  Each
runner drains operations with the hot structures (busy table, L1 set
index, LRU stacks, version map, chunked op stream) held in locals and
closure cells, executes the L1 hit/upgrade path inline from the
per-protocol dispatch tables, and accumulates every monotonic counter
in closure cells that are flushed additively only at run boundaries
(:meth:`ArrayChip._flush_runners`: before the warmup ``reset_stats``
and before finalization) — the per-event cost of the object model's
attribute-increment bookkeeping disappears from the hot path entirely.
Misses drop into the protocol's own (unmodified) ``_handle_read_miss``
/ ``_handle_write_miss`` handlers, which in turn call the
instance-patched fast helpers.

Equivalence argument, mirroring the ``_issue_fast`` one: the runner
performs exactly the statement sequence of ``Core._issue_fast`` +
``CoherenceProtocol.access`` — same heap pushes with the same
``(time, seq)`` keys, same RNG draws, same defaultdict touches, same
LRU moves — and the deferred counter flush is sound because the
batched counters are pure monotonic sums (never read mid-run) flushed
at exactly the observation points where the object engine's running
totals are consumed.  The determinism suite and the verify
differential harness pin bit-identity for all five protocols, with
``REPRO_FAST_PATH`` on and off.

When the compiled path cannot apply (a tracer is attached, the network
runs the detailed link-load/contention path, or
``REPRO_SIMX_COMPILED=0``), the chip transparently falls back to the
object issue path — statistics are identical either way, only the
speedup is lost.
"""

from __future__ import annotations

import os
from heapq import heappush
from typing import Callable, Optional, Tuple

from ..core.states import L1State
from ..sim.chip import Chip, Core, _INLINE_OPS
from ..stats.counters import RunStats
from ..workloads.generator import _CHUNK
from .handlers import compile_protocol_handlers
from .helpers import (
    install_fast_cache_methods,
    install_fast_helpers,
    protocol_caches,
)
from .tables import W_OWNER_CHECK, W_SILENT, ProtocolTables

__all__ = ["ArrayChip", "make_runner"]


def make_runner(
    chip: Chip, core: Core, tables: ProtocolTables
) -> Tuple[
    Callable[[], None],
    Callable[[Optional[int]], None],
    Callable[[], None],
    Callable[[], None],
]:
    """Compile the issue runner (and its maintenance hooks) for one core.

    Returns ``(runner, rebind, sync, flush)``.  The runner closure
    replaces ``core._issue``; *all* per-core state — the chunked op
    stream, the translation memo, the batched counters, and the
    run-scoped values the first version re-read from attributes on
    every call (``chip.deadline``, ``sim._run_until``,
    ``core.ops_target``, the ``_l1_hot`` unpack, ``core._pending`` /
    ``core.ops_done`` / ``core.done``) — lives in closure cells.  With
    eight cores interleaving on the heap a runner call drains ~1 op on
    average, so that per-call prologue/epilogue was paid per *op*;
    hoisting it into cells is the difference between the runner and the
    object engine's ``_issue_fast`` entry cost.

    The cells are only valid between a ``rebind`` and the next
    ``sync``:

    * ``rebind(until)`` loads the run-scoped state *into* the cells and
      must be called immediately before every ``sim.run`` (the chip's
      run methods do; ``until`` mirrors the bound ``sim.run`` will
      publish as ``_run_until``).  It also re-unpacks ``_l1_hot``,
      which ``reset_stats`` rebuilds at the warmup boundary.
    * ``sync()`` writes ``core._pending`` / ``core.ops_done`` back to
      the core attributes so diagnostics, the watchdog progress count
      and the warmup adjustment read the same fields as under the
      object engine.  The chip calls it at every observation boundary
      and before any watchdog callback.

    The flush closure adds the batched counters into the *current*
    stats objects and zeroes them; the chip calls it at every
    observation boundary.
    """
    proto = chip.protocol
    sim = chip.sim
    queue = sim._queue  # never reassigned over a Simulator's lifetime
    tile = core.tile
    checker = proto.checker
    version_map = checker._version
    busy_get = proto._busy.get
    handle_read_miss = proto._handle_read_miss
    handle_write_miss = proto._handle_write_miss
    upgrade_local = proto._owner_upgrade_is_local
    o_unconditional = tables.o_upgrade_unconditional
    write_action = tables.write_action
    l1_hit_latency = tables.l1_hit_latency
    block_shift = tables.block_shift
    max_addr = tables.max_addr
    block_of = proto.addr.block_of
    l1_name = proto._l1_names[tile]
    I_state = L1State.I
    M_state = L1State.M
    SILENT = W_SILENT
    OWNER_CHECK = W_OWNER_CHECK
    chip_core_finished = chip._core_finished
    #: REPRO_FAST_PATH=0 keeps the one-event-per-op discipline of the
    #: reference path (no inline clock advance); stats are identical
    #: either way, only the event interleaving bookkeeping differs
    fast = chip.fast_path

    workload = chip.workload
    chunked = hasattr(workload, "trace_chunks")
    if chunked:
        chunks = workload.trace_chunks(tile)
        vm = workload.placement.vm_of(tile)
        table = workload.table
        translate = table.translate
        translate_write = table.translate_write
        cow_events = table.cow_events
        cow_seen = len(cow_events)
        tcache: dict = {}
        tcache_get = tcache.get
        page_shift = (
            workload.addr.page_offset_bits - workload.addr.block_offset_bits
        )
        trace = None
    else:
        # e.g. a recorded TraceFileWorkload: consume the core's MemOp
        # stream directly (no stage-a/stage-b split available)
        chunks = None
        trace = core._trace
        cow_seen = 0
    c_vpages = c_offs = c_writes = c_thinks = None
    c_pos = _CHUNK  # forces the first chunk fetch

    # run-scoped cells: loaded by rebind() at every run boundary,
    # written back by sync() at every observation boundary
    deadline: Optional[int] = None
    run_until: Optional[int] = None
    ops_target: Optional[int] = None
    done = False
    pending = None
    ops_done = 0
    set_mask = l1_index = l1_policies = l1_ways = None

    # batched monotonic counters (closure cells; zeroed by flush).
    # RunStats scalars:
    n_ops = n_reads = n_writes = n_retries = 0
    n_st_hits = n_st_misses = n_upgrades = 0
    # this tile's L1 CacheAccessStats:
    n_tag_reads = n_hits = n_misses = n_data_reads = n_data_writes = 0
    # checker tallies:
    n_reads_checked = n_commits = 0

    def rebind(until: Optional[int]) -> None:
        """Load the run-scoped state into the cells (see above)."""
        nonlocal deadline, run_until, ops_target, done, pending, ops_done
        nonlocal set_mask, l1_index, l1_policies, l1_ways
        deadline = chip.deadline
        run_until = until
        ops_target = core.ops_target
        done = core.done
        pending = core._pending
        ops_done = core.ops_done
        _, set_mask, l1_index, l1_policies, l1_ways = proto._l1_hot[tile]

    def sync() -> None:
        """Write the live cells back to the core attributes."""
        core._pending = pending
        core.ops_done = ops_done

    def runner() -> None:
        nonlocal c_pos, c_vpages, c_offs, c_writes, c_thinks, cow_seen
        nonlocal pending, ops_done, done
        nonlocal n_ops, n_reads, n_writes, n_retries
        nonlocal n_st_hits, n_st_misses, n_upgrades
        nonlocal n_tag_reads, n_hits, n_misses, n_data_reads, n_data_writes
        nonlocal n_reads_checked, n_commits
        if done:
            return
        now = sim._now
        for _ in range(_INLINE_OPS):
            if deadline is not None and now >= deadline:
                return
            if pending is None:
                if chunked:
                    i = c_pos
                    if i == _CHUNK:
                        c_vpages, c_offs, c_writes, c_thinks = next(chunks)
                        i = 0
                    c_pos = i + 1
                    vpage = c_vpages[i]
                    is_write = c_writes[i]
                    # stage b inline (mirrors ConsolidatedWorkload
                    # .trace): translation in consumption order
                    if is_write:
                        ppage = translate_write(vm, vpage)[0]
                    else:
                        if len(cow_events) != cow_seen:
                            tcache.clear()
                            cow_seen = len(cow_events)
                        ppage = tcache_get(vpage)
                        if ppage is None:
                            ppage = tcache[vpage] = translate(vm, vpage)
                    block = (ppage << page_shift) | c_offs[i]
                    think = c_thinks[i]
                else:
                    op = next(trace)
                    addr = op[0]
                    is_write = op[1]
                    think = op[2]
                    # mirrors the inlined block_of in access()
                    if 0 <= addr <= max_addr:
                        block = addr >> block_shift
                    else:
                        block = block_of(addr)
            else:
                block, is_write, think = pending
                pending = None
            # --- protocol.access, inline -------------------------
            busy_until = busy_get(block, 0)
            if busy_until > now:
                n_retries += 1
                pending = (block, is_write, think)
                # busy_until > now, so the object path's
                # max(retry_at, now + 1) is just busy_until
                heappush(queue, (busy_until, sim._seq, issue))
                sim._seq += 1
                return
            n_ops += 1
            if is_write:
                n_writes += 1
            else:
                n_reads += 1
            n_tag_reads += 1
            s = block & set_mask
            way = l1_index[s].get(block)
            if way is None:
                n_misses += 1
                line = None
            else:
                n_hits += 1
                stack = l1_policies[s]._stack
                if stack[0] != way:
                    stack.remove(way)
                    stack.insert(0, way)
                line = l1_ways[s][way][1]
            missed = False
            if line is not None and line.state is not I_state:
                if not is_write:
                    n_data_reads += 1
                    n_st_hits += 1
                    n_reads_checked += 1
                    if line.version != version_map[block]:
                        # mismatch: re-enter check_read for the
                        # usual violation message (it raises)
                        checker.check_read(
                            block, line.version, where=l1_name,
                            now=now, tile=tile,
                        )
                    latency = l1_hit_latency
                else:
                    act = write_action[line.state]
                    if act == SILENT or (
                        act == OWNER_CHECK
                        and line.sharers == 0
                        and not line.propos
                        and (
                            o_unconditional
                            or upgrade_local(block, line)
                        )
                    ):
                        # silent upgrade (charge_data_write +
                        # commit_write, inline)
                        n_data_writes += 1
                        n_st_hits += 1
                        n_upgrades += 1
                        line.state = M_state
                        line.dirty = True
                        v = version_map[block] + 1
                        version_map[block] = v
                        n_commits += 1
                        commit_log = checker._commit_log
                        if commit_log is not None:
                            commit_log.append(block)
                        line.version = v
                        latency = l1_hit_latency
                    else:
                        missed = True
                        latency, links, category = handle_write_miss(
                            tile, block, now, had_copy=True
                        )
            elif is_write:
                missed = True
                latency, links, category = handle_write_miss(
                    tile, block, now, had_copy=False
                )
            else:
                missed = True
                latency, links, category = handle_read_miss(
                    tile, block, now
                )
            if missed:
                n_st_misses += 1
                # inlined miss_latency/miss_links accumulators
                # (min/max state: not batchable, mirrored exactly)
                st = proto.stats
                acc = st.miss_latency
                if acc.count == 0:
                    acc.minimum = acc.maximum = latency
                elif latency < acc.minimum:
                    acc.minimum = latency
                elif latency > acc.maximum:
                    acc.maximum = latency
                acc.count += 1
                acc.total += latency
                acc = st.miss_links
                if acc.count == 0:
                    acc.minimum = acc.maximum = links
                elif links < acc.minimum:
                    acc.minimum = links
                elif links > acc.maximum:
                    acc.maximum = links
                acc.count += 1
                acc.total += links
                if category:
                    st.miss_categories[category] += 1
            # --- completion (mirrors _issue_fast) ----------------
            ops_done += 1
            if ops_target is not None and ops_done >= ops_target:
                done = True
                core.done = True
                chip_core_finished(now)
                return
            delay = latency + think
            t2 = now + (delay if delay > 1 else 1)
            if (
                not fast
                or (queue and queue[0][0] <= t2)
                or (run_until is not None and t2 > run_until)
            ):
                heappush(queue, (t2, sim._seq, issue))
                sim._seq += 1
                return
            sim._now = now = t2
        # inline budget exhausted; continue via an event at ``now``
        heappush(queue, (now, sim._seq, issue))
        sim._seq += 1

    issue = runner

    def flush() -> None:
        """Add the batched counters into the current stats and zero them."""
        nonlocal n_ops, n_reads, n_writes, n_retries
        nonlocal n_st_hits, n_st_misses, n_upgrades
        nonlocal n_tag_reads, n_hits, n_misses, n_data_reads, n_data_writes
        nonlocal n_reads_checked, n_commits
        st = proto.stats
        st.operations += n_ops
        st.reads += n_reads
        st.writes += n_writes
        st.retries += n_retries
        st.l1_hits += n_st_hits
        st.l1_misses += n_st_misses
        st.upgrades += n_upgrades
        l1stats = proto._l1_hot[tile][0]
        l1stats.tag_reads += n_tag_reads
        l1stats.hits += n_hits
        l1stats.misses += n_misses
        l1stats.data_reads += n_data_reads
        l1stats.data_writes += n_data_writes
        checker.reads_checked += n_reads_checked
        checker.writes_committed += n_commits
        n_ops = n_reads = n_writes = n_retries = 0
        n_st_hits = n_st_misses = n_upgrades = 0
        n_tag_reads = n_hits = n_misses = n_data_reads = n_data_writes = 0
        n_reads_checked = n_commits = 0

    return runner, rebind, sync, flush


class ArrayChip(Chip):
    """A :class:`Chip` issuing through compiled array-engine runners."""

    engine = "array"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._simx_tables: Optional[ProtocolTables] = None
        self._flushes: list = []
        self._rebinds: list = []
        self._syncs: list = []
        self._armed = False

    def _arm(self) -> None:
        """Swap the cores onto compiled runners (idempotent).

        Deferred to run time so a tracer attached after construction is
        seen; when the compiled path cannot apply, the cores keep the
        object issue path — bit-identical statistics, no speedup.
        """
        if self._armed:
            return
        proto = self.protocol
        from ..core.protocols.registry import REGISTRY

        if (
            os.environ.get("REPRO_SIMX_COMPILED", "1") == "0"
            or proto._trace is not None
            or proto.network._detailed
            # a consolidation plan mutates placement/cores/page table
            # mid-run — the compiled runners cache all three, so fall
            # back to the object issue path (like tracer/detailed-NoC)
            or self.plan is not None
            # registry capability flag: new protocol families (bus
            # transport, directoryless LLC) have no compiled mirrors —
            # fall back to the object issue path transparently
            or not REGISTRY.supports_simx(type(proto))
        ):
            return
        tables = ProtocolTables(proto)
        self._simx_tables = tables
        install_fast_helpers(proto, tables)
        for cache in protocol_caches(proto):
            install_fast_cache_methods(cache)
        self._flushes = []
        self._rebinds = []
        self._syncs = []
        # compiled per-protocol miss handlers: instance-patched before
        # the runners are compiled, so make_runner binds them
        handler_flush = compile_protocol_handlers(proto, tables)
        if handler_flush is not None:
            self._flushes.append(handler_flush)
        for core in self.cores:
            core._issue, rebind, sync, flush = make_runner(self, core, tables)
            self._rebinds.append(rebind)
            self._syncs.append(sync)
            self._flushes.append(flush)
        self._armed = True

    def _rebind_runners(self, until: Optional[int]) -> None:
        """Load every runner's run-scoped cells; call before ``sim.run``."""
        for rebind in self._rebinds:
            rebind(until)

    def _sync_runners(self) -> None:
        """Write every runner's live cells back to the core attributes."""
        for sync in self._syncs:
            sync()

    def _flush_runners(self) -> None:
        """Flush every core's batched counters into the live stats.

        Called at exactly the points where the object engine's running
        totals become observable: the warmup ``reset_stats`` boundary
        and the end of a run (including aborted runs — the ``finally``
        in the run methods — so post-mortem stats stay consistent).
        Syncs the per-core cells first so ``core.ops_done`` /
        ``core._pending`` are as current as the stats.
        """
        self._sync_runners()
        for flush in self._flushes:
            flush()

    # the watchdog holds bound references to these two (see
    # Chip._build_watchdog); the overrides sync the runner cells first
    # so progress sampling and livelock diagnostics see live values
    # even though the runners no longer write the attributes per call

    def _ops_retired(self) -> int:
        self._sync_runners()
        return super()._ops_retired()

    def _livelock_diagnostic(self) -> dict:
        self._sync_runners()
        return super()._livelock_diagnostic()

    def run_cycles(self, cycles: int, warmup: int = 0) -> RunStats:
        self._arm()
        if not self._armed:
            return super().run_cycles(cycles, warmup)
        # mirror of Chip.run_cycles with counter flushes at the two
        # observation boundaries
        self.deadline = warmup + cycles
        self._cores_running = sum(1 for c in self.cores if not c.done)
        for core in self.cores:
            core.start()
        try:
            if warmup:
                self._rebind_runners(warmup)
                self.sim.run(until=warmup)
                self._flush_runners()
                self.protocol.reset_stats()
                ops_at_warmup = [c.ops_done for c in self.cores]
            # rebind again: _l1_hot was rebuilt by reset_stats, and the
            # run window bound changed
            self._rebind_runners(warmup + cycles)
            self.sim.run(until=warmup + cycles)
        finally:
            self._flush_runners()
        if warmup:
            for c, base_ops in zip(self.cores, ops_at_warmup):
                c.ops_done -= base_ops
            self.protocol.stats.operations = sum(c.ops_done for c in self.cores)
        return self._finalize(cycles)

    def run_ops(self, ops_per_core: int) -> RunStats:
        self._arm()
        if not self._armed:
            return super().run_ops(ops_per_core)
        self._cores_running = len(self.cores)
        for core in self.cores:
            core.ops_target = ops_per_core
            core.start()
        self._rebind_runners(None)
        try:
            self.sim.run()
        finally:
            self._flush_runners()
        return self._finalize(self._finish_time or self.sim.now)
