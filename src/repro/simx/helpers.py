"""Instance-patched fast protocol helpers for the array engine.

The miss handlers of the five protocols run unmodified under the array
engine, but the shared helpers they call on every transaction leg —
``msg``, ``mem_fetch``, ``mem_writeback``, ``set_busy`` — are replaced
by closures bound on the *protocol instance*.  An instance attribute
shadows the class method, so every ``self.msg(...)`` inside unported
handler code dispatches to the fast version while other protocol
instances (in particular the object-engine baseline) are untouched.

Each closure mirrors its original's accounting statement for statement
(same counters, same defaultdict touches, same interned ``Delivery``
instances, same RNG draws), and re-reads the live stats objects per
call so ``reset_stats`` — which replaces them at the warmup boundary —
needs no re-install hook.  Bit-identity with the originals is pinned by
the engine-identity determinism tests.

Only installed when no tracer is attached and the network runs the
non-detailed (no link load, no contention) path; the array engine falls
back to the object issue path otherwise.
"""

from __future__ import annotations

from ..cache.replacement import LRU
from ..core.messages import MessageType
from ..core.protocols.base import CoherenceProtocol
from ..noc.network import Delivery
from .tables import ProtocolTables

__all__ = [
    "install_fast_helpers",
    "remove_fast_helpers",
    "install_fast_cache_methods",
    "remove_fast_cache_methods",
    "protocol_caches",
]

_PATCHED = ("msg", "mem_fetch", "mem_writeback", "set_busy")

_CACHE_PATCHED = ("lookup", "peek", "insert", "invalidate", "displace", "victim_for")


def install_fast_helpers(
    proto: CoherenceProtocol, tables: ProtocolTables
) -> None:
    """Bind the fast helper closures onto ``proto`` (idempotent).

    Caller must guarantee ``proto._trace is None`` and
    ``not proto.network._detailed``.
    """
    net = proto.network
    hops_flat = tables.hops_flat
    n_tiles = tables.n_tiles
    hop_cycles = tables.hop_cycles
    delivery_cache = net._delivery_cache
    delivery_get = delivery_cache.get
    flits_of = tables.flits
    mem_fetch_t = MessageType.MEM_FETCH
    mem_data_t = MessageType.MEM_DATA
    writeback_t = MessageType.WRITEBACK

    def msg(src: int, dst: int, msg_type: str, now: int) -> Delivery:
        # mirrors CoherenceProtocol.msg + Network.send (non-detailed,
        # untraced): the stats object is re-read per call because
        # reset_stats replaces it
        flits = flits_of[msg_type]
        hops = hops_flat[src * n_tiles + dst]
        st = net.stats
        if hops == 0:
            st.local_messages += 1
            d = delivery_get((0, flits))
            if d is None:
                d = delivery_cache[(0, flits)] = Delivery(
                    latency=0, hops=0, flits=flits
                )
            return d
        st.messages += 1
        st.by_type[msg_type] += 1
        st.flits_by_type[msg_type] += flits
        st.flit_link_traversals += flits * hops
        st.router_traversals += hops
        st.routing_events += 1
        d = delivery_get((hops, flits))
        if d is None:
            d = delivery_cache[(hops, flits)] = Delivery(
                latency=hops * hop_cycles + flits - 1,
                hops=hops,
                flits=flits,
            )
        return d

    memctl = proto.memctl
    positions = memctl.positions
    nearest = memctl._nearest
    base_latency = memctl._base_latency
    randbelow = memctl._randbelow
    jitter_cycles = memctl.jitter_cycles
    jitter_bound = jitter_cycles + 1

    def mem_fetch(home: int, block: int) -> int:
        # mirrors CoherenceProtocol.mem_fetch +
        # MemoryControllers.access_latency (same RNG draw sequence)
        st = proto.stats
        st.memory_fetches += 1
        st.l2_misses += 1
        ctrl = positions[nearest[home]]
        msg(home, ctrl, mem_fetch_t, 0)
        msg(ctrl, home, mem_data_t, 0)
        memctl.accesses += 1
        jitter = randbelow(jitter_bound) if jitter_cycles else 0
        return base_latency[home] + jitter

    mem_version = proto._mem_version

    def mem_writeback(home: int, block: int, version: int) -> None:
        # mirrors CoherenceProtocol.mem_writeback
        proto.stats.writebacks += 1
        msg(home, positions[nearest[home]], writeback_t, 0)
        mem_version[block] = version

    busy = proto._busy
    busy_get = busy.get

    def set_busy(block: int, until: int) -> None:
        # mirrors CoherenceProtocol.set_busy
        if until > busy_get(block, 0):
            busy[block] = until

    proto.msg = msg  # type: ignore[method-assign]
    proto.mem_fetch = mem_fetch  # type: ignore[method-assign]
    proto.mem_writeback = mem_writeback  # type: ignore[method-assign]
    proto.set_busy = set_busy  # type: ignore[method-assign]


def remove_fast_helpers(proto: CoherenceProtocol) -> None:
    """Restore the class-level helpers (undo :func:`install_fast_helpers`)."""
    for name in _PATCHED:
        proto.__dict__.pop(name, None)


def protocol_caches(proto: CoherenceProtocol):
    """Every :class:`SetAssocCache` a protocol owns (all five layouts).

    Data caches, the coherence-cache arrays behind the prediction and
    owner caches, and the protocol-specific directory-cache banks
    (``dircaches`` on Directory, ``l2dirs`` on VH).
    """
    yield from proto.l1s
    yield from proto.l2s
    for pc in getattr(proto, "l1cs", ()):
        yield pc.array
    for oc in getattr(proto, "l2cs", ()):
        yield oc.array
    yield from getattr(proto, "dircaches", ())
    yield from getattr(proto, "l2dirs", ())


def install_fast_cache_methods(cache) -> None:
    """Bind flattened closures for the hot cache methods onto ``cache``.

    Statement-for-statement mirrors of the :class:`SetAssocCache`
    methods with the attribute chains in cells and the LRU policy calls
    (``touch``/``victim``/``reset``) inlined as age-stack operations —
    which is why only LRU caches are patched; any other policy keeps
    the class methods.  The stats object is re-read per call
    (``reset_stats`` replaces it), and the tracer hook is re-checked on
    the state-changing paths, so a patched cache stays correct even if
    a tracer is attached later (the engine additionally refuses to arm
    in that case).
    """
    if cache._policy_name != "lru":
        return
    index_shift = cache.index_shift
    set_mask = cache._set_mask
    index_l = cache._index
    ways_l = cache._ways
    slots = cache._policy_slots
    free_l = cache._free
    n_ways = cache.n_ways
    name = cache.name
    make_lru = LRU

    def lookup(block, touch=True):
        s = (block >> index_shift) & set_mask
        stats = cache.stats
        stats.tag_reads += 1
        way = index_l[s].get(block)
        if way is None:
            stats.misses += 1
            return None
        stats.hits += 1
        if touch:
            stack = slots[s]._stack
            if stack[0] != way:
                stack.remove(way)
                stack.insert(0, way)
        return ways_l[s][way][1]

    def peek(block):
        s = (block >> index_shift) & set_mask
        way = index_l[s].get(block)
        if way is None:
            return None
        return ways_l[s][way][1]

    def victim_for(block):
        s = (block >> index_shift) & set_mask
        if block in index_l[s]:
            return None
        free = free_l[s]
        if free is None or free:
            return None
        return ways_l[s][slots[s]._stack[-1]]

    def insert(block, entry):
        s = (block >> index_shift) & set_mask
        cache.stats.tag_writes += 1
        index = index_l[s]
        ways = ways_l[s]
        policy = slots[s]
        if policy is None:
            # lazy build, like the class method (LRU ignores the
            # per-set seed, so the CRC derivation is skipped)
            policy = slots[s] = make_lru(n_ways)
        stack = policy._stack
        existing = index.get(block)
        if existing is not None:
            ways[existing] = (block, entry)
            if stack[0] != existing:
                stack.remove(existing)
                stack.insert(0, existing)
            if cache._trace is not None:
                cache._trace.cache_event(name, "fill", block)
            return None
        free = free_l[s]
        if free is None:
            # first insert into this set takes way 0
            free_l[s] = list(range(n_ways - 1, 0, -1))
            ways[0] = (block, entry)
            index[block] = 0
            if stack[0] != 0:
                stack.remove(0)
                stack.insert(0, 0)
            if cache._trace is not None:
                cache._trace.cache_event(name, "fill", block)
            return None
        if free:
            way = free.pop()
            ways[way] = (block, entry)
            index[block] = way
            if stack[0] != way:
                stack.remove(way)
                stack.insert(0, way)
            if cache._trace is not None:
                cache._trace.cache_event(name, "fill", block)
            return None
        way = stack[-1]  # LRU victim
        victim = ways[way]
        del index[victim[0]]
        ways[way] = (block, entry)
        index[block] = way
        if stack[0] != way:
            stack.remove(way)
            stack.insert(0, way)
        cache.stats.evictions += 1
        if cache._trace is not None:
            cache._trace.cache_event(name, "evict", victim[0])
            cache._trace.cache_event(name, "fill", block)
        return victim

    def invalidate(block):
        s = (block >> index_shift) & set_mask
        way = index_l[s].pop(block, None)
        if way is None:
            return None
        cache.stats.tag_writes += 1
        ways = ways_l[s]
        frame = ways[way]
        ways[way] = None
        free_l[s].append(way)
        # LRU.reset: demote the invalidated way to LRU position
        stack = slots[s]._stack
        stack.remove(way)
        stack.append(way)
        if cache._trace is not None:
            cache._trace.cache_event(name, "invalidate", block)
        return frame[1]

    def displace(block):
        s = (block >> index_shift) & set_mask
        index = index_l[s]
        if block in index:
            return None
        free = free_l[s]
        if free is None or free:
            return None
        stack = slots[s]._stack
        way = stack[-1]  # LRU victim; reset(way) on the stack tail is
        frame = ways_l[s][way]  # a no-op, so the stack is untouched
        del index[frame[0]]
        ways_l[s][way] = None
        free.append(way)
        cache.stats.tag_writes += 1
        if cache._trace is not None:
            cache._trace.cache_event(name, "evict", frame[0])
        return frame

    cache.lookup = lookup
    cache.peek = peek
    cache.victim_for = victim_for
    cache.insert = insert
    cache.invalidate = invalidate
    cache.displace = displace


def remove_fast_cache_methods(cache) -> None:
    """Undo :func:`install_fast_cache_methods`."""
    for name in _CACHE_PATCHED:
        cache.__dict__.pop(name, None)
