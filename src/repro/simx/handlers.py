"""Registry of compiled per-protocol miss handlers.

Each of the five protocols has an arm-time compiler that flattens its
four transaction hooks (``_handle_read_miss`` / ``_handle_write_miss``
/ ``_evict_l1_line`` / ``_evict_l2_entry``) into closures bound on the
protocol *instance* — see the ``handlers_*`` modules.  The registry is
keyed by exact class identity: a user-defined subclass (for example a
verification mutation overriding one hook) keeps the object-engine
methods, which stay the single source of truth for semantics.

:func:`compile_protocol_handlers` must run after the fast helpers and
cache methods are installed (the compilers hoist the per-cache bound
methods) and before the issue runners are compiled (the runners bind
``proto._handle_read_miss`` / ``proto._handle_write_miss`` at
compile time).  It returns the counter flush to register with the
chip's observation-boundary flush list, or ``None`` when the protocol
has no compiled handlers (everything still runs, on the object
handlers over the fast helpers).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Type

from ..core.protocols.arin import DiCoArinProtocol
from ..core.protocols.base import CoherenceProtocol
from ..core.protocols.dico import DiCoProtocol
from ..core.protocols.directory import DirectoryProtocol
from ..core.protocols.providers import DiCoProvidersProtocol
from ..core.protocols.vh import VirtualHierarchyProtocol
from .handlers_arin import compile_arin_handlers
from .handlers_dico import compile_dico_handlers
from .handlers_directory import compile_directory_handlers
from .handlers_providers import compile_providers_handlers
from .handlers_vh import compile_vh_handlers
from .tables import ProtocolTables

__all__ = [
    "HANDLER_COMPILERS",
    "compile_protocol_handlers",
    "remove_compiled_handlers",
]

#: exact protocol class -> arm-time handler compiler
HANDLER_COMPILERS: Dict[Type[CoherenceProtocol], Callable] = {
    DirectoryProtocol: compile_directory_handlers,
    DiCoProtocol: compile_dico_handlers,
    DiCoProvidersProtocol: compile_providers_handlers,
    DiCoArinProtocol: compile_arin_handlers,
    VirtualHierarchyProtocol: compile_vh_handlers,
}

_HANDLER_ATTRS = (
    "_handle_read_miss",
    "_handle_write_miss",
    "_evict_l1_line",
    "_evict_l2_entry",
)


def compile_protocol_handlers(
    proto: CoherenceProtocol, tables: ProtocolTables
) -> Optional[Callable[[], None]]:
    """Compile and bind the miss handlers for ``proto``, if registered.

    Caller must guarantee ``proto._trace is None`` and a non-detailed
    network (the same preconditions as the fast helpers).
    """
    compiler = HANDLER_COMPILERS.get(type(proto))
    if compiler is None:
        return None
    return compiler(proto, tables)


def remove_compiled_handlers(proto: CoherenceProtocol) -> None:
    """Restore the class-level hooks (undo the instance patch)."""
    for name in _HANDLER_ATTRS:
        proto.__dict__.pop(name, None)
