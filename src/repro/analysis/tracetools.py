"""Trace analysis: lifecycles, hop attribution, counter reconciliation.

Works over streams of :class:`~repro.trace.TraceEvent` — either the
in-memory ``RunResult.events`` tuple or a JSONL file read back with
:func:`read_trace`.  Three jobs:

* :func:`lifecycle` — one block's chronological coherence story (every
  transition, fill, eviction and message attributed to it);
* :func:`hop_attribution` — per-address traffic summaries whose totals
  sum *exactly* to the aggregate network counters;
* :func:`reconcile` — the cross-check: replay a trace through the same
  accounting rules :class:`~repro.noc.network.Network` applies and
  assert the per-event stream and the end-of-run aggregates agree.

Counter semantics mirror ``Network.send`` / ``Network.broadcast``
exactly: a unicast ``send`` contributes its flits and hops, a
``local`` event only counts in ``local_messages``, a ``broadcast``
charges its tree links, and ``deliver`` events are timing-only (the
matching ``send`` already carried the traffic).  Only events after the
last ``reset_stats`` marker count — the aggregate counters are zeroed
there (the post-warmup measurement window).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Union

from ..stats.counters import RunStats
from ..trace.events import TraceEvent
from ..workloads.dynamics import EVENT_KINDS

__all__ = [
    "ReconciliationError",
    "TrafficAccumulator",
    "hop_attribution",
    "lifecycle",
    "measurement_window",
    "read_trace",
    "reconcile",
]


class ReconciliationError(AssertionError):
    """The trace and the aggregate counters disagree."""


def read_trace(path: Union[str, Path]) -> Iterator[TraceEvent]:
    """Stream events back from a JSONL trace file."""
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield TraceEvent.from_dict(json.loads(line))


def _is_reset(event: TraceEvent) -> bool:
    return (
        event.layer == "run"
        and event.event == "marker"
        and event.attrs.get("name") == "reset_stats"
    )


def measurement_window(events: Iterable[TraceEvent]) -> List[TraceEvent]:
    """Events after the last ``reset_stats`` marker (all, if none)."""
    out: List[TraceEvent] = []
    for event in events:
        if _is_reset(event):
            out.clear()
        else:
            out.append(event)
    return out


def lifecycle(
    events: Iterable[TraceEvent], addr: int
) -> List[TraceEvent]:
    """One block's chronological event stream (all layers).

    Sorted by cycle (stable): ``deliver`` events are *emitted* at send
    time but *stamped* with their delivery cycle, so the raw stream is
    not in cycle order — the reconstruction is.
    """
    return sorted(
        (e for e in events if e.addr == addr), key=lambda e: e.cycle
    )


class TrafficAccumulator:
    """Streaming re-derivation of the network counters from a trace.

    Usable directly as a :class:`~repro.trace.TraceSink` — pass it via
    ``TraceOptions(sink=...)`` to reconcile reference-scale runs
    without storing tens of millions of events.  A ``reset_stats``
    marker zeroes the totals, so after a run the accumulator holds
    exactly the measurement window.

    ``per_addr`` (optional) additionally keeps per-address summaries
    (:func:`hop_attribution` shape); leave it off for large runs.
    """

    def __init__(self, per_addr: bool = False) -> None:
        self.track_per_addr = per_addr
        self.reset()

    def reset(self) -> None:
        self.messages = 0
        self.local_messages = 0
        self.flit_link_traversals = 0
        self.router_traversals = 0
        self.routing_events = 0
        self.broadcasts = 0
        self.by_type: Dict[str, int] = {}
        self.flits_by_type: Dict[str, int] = {}
        #: dynamic-consolidation events by kind (vm_migrate, ...)
        self.consolidation: Dict[str, int] = {}
        self.per_addr: Dict[Optional[int], Dict] = {}

    def _addr_bucket(self, addr: Optional[int]) -> Dict:
        bucket = self.per_addr.get(addr)
        if bucket is None:
            bucket = self.per_addr[addr] = {
                "messages": 0,
                "hops": 0,
                "flits": 0,
                "flit_links": 0,
                "by_type": {},
                "flits_by_type": {},
            }
        return bucket

    def emit(self, event: TraceEvent) -> None:
        layer = event.layer
        if layer == "noc":
            kind = event.event
            attrs = event.attrs
            if kind == "send":
                msg_type = attrs["msg_type"]
                flits = attrs["flits"]
                hops = attrs["hops"]
                self.messages += 1
                self.by_type[msg_type] = self.by_type.get(msg_type, 0) + 1
                self.flits_by_type[msg_type] = (
                    self.flits_by_type.get(msg_type, 0) + flits
                )
                self.flit_link_traversals += flits * hops
                self.router_traversals += hops
                self.routing_events += 1
                if self.track_per_addr:
                    bucket = self._addr_bucket(event.addr)
                    bucket["messages"] += 1
                    bucket["hops"] += hops
                    bucket["flits"] += flits
                    bucket["flit_links"] += flits * hops
                    bucket["by_type"][msg_type] = (
                        bucket["by_type"].get(msg_type, 0) + 1
                    )
                    bucket["flits_by_type"][msg_type] = (
                        bucket["flits_by_type"].get(msg_type, 0) + flits
                    )
            elif kind == "local":
                self.local_messages += 1
            elif kind == "broadcast":
                msg_type = attrs["msg_type"]
                flits = attrs["flits"]
                links = attrs["links"]
                charged = flits * max(1, links)
                self.messages += 1
                self.broadcasts += 1
                self.by_type[msg_type] = self.by_type.get(msg_type, 0) + 1
                self.flits_by_type[msg_type] = (
                    self.flits_by_type.get(msg_type, 0) + charged
                )
                self.flit_link_traversals += flits * links
                self.router_traversals += links
                self.routing_events += links
                if self.track_per_addr:
                    bucket = self._addr_bucket(event.addr)
                    bucket["messages"] += 1
                    bucket["hops"] += links
                    bucket["flits"] += charged
                    bucket["flit_links"] += flits * links
                    bucket["by_type"][msg_type] = (
                        bucket["by_type"].get(msg_type, 0) + 1
                    )
                    bucket["flits_by_type"][msg_type] = (
                        bucket["flits_by_type"].get(msg_type, 0) + charged
                    )
            # "deliver" is timing-only: the send carried the traffic
        elif layer == "consolidation":
            self.consolidation[event.event] = (
                self.consolidation.get(event.event, 0) + 1
            )
        elif _is_reset(event):
            self.reset()

    def close(self) -> None:
        pass

    def feed(self, events: Iterable[TraceEvent]) -> "TrafficAccumulator":
        for event in events:
            self.emit(event)
        return self

    def totals(self) -> Dict[str, int]:
        return {
            "messages": self.messages,
            "local_messages": self.local_messages,
            "flit_link_traversals": self.flit_link_traversals,
            "router_traversals": self.router_traversals,
            "routing_events": self.routing_events,
            "broadcasts": self.broadcasts,
        }


def hop_attribution(
    events: Iterable[TraceEvent],
) -> Dict[Optional[int], Dict]:
    """Per-address traffic summaries for the measurement window.

    Each NoC event charges its block (``None`` for unattributed
    traffic), so summing any field across all addresses reproduces the
    corresponding aggregate counter exactly — the invariant
    :func:`reconcile` enforces.
    """
    acc = TrafficAccumulator(per_addr=True)
    for event in events:
        acc.emit(event)
    return acc.per_addr


def reconcile(
    events: Union[Iterable[TraceEvent], TrafficAccumulator],
    stats: RunStats,
) -> Dict[str, int]:
    """Assert the trace reproduces the aggregate network counters.

    ``events`` may be an event stream (replayed here) or a
    :class:`TrafficAccumulator` that was attached as the run's sink.
    Returns the verified totals; raises :class:`ReconciliationError`
    with every disagreeing counter otherwise.
    """
    if isinstance(events, TrafficAccumulator):
        acc = events
    else:
        acc = TrafficAccumulator().feed(events)
    net = stats.network
    problems: List[str] = []
    for name, traced in acc.totals().items():
        aggregate = getattr(net, name)
        if traced != aggregate:
            problems.append(f"{name}: trace={traced} aggregate={aggregate}")
    for label, traced_map, agg_map in (
        ("by_type", acc.by_type, dict(net.by_type)),
        ("flits_by_type", acc.flits_by_type, dict(net.flits_by_type)),
        (
            "consolidation",
            acc.consolidation,
            # the aggregate dict also holds effect counters
            # (blocks_migrated, pages_broken, ...); only the per-kind
            # counts have trace-event counterparts
            # stats-shaped views over live network counters may not
            # carry the section at all (== a static run)
            {
                k: v
                for k, v in getattr(stats, "consolidation", {}).items()
                if k in EVENT_KINDS
            },
        ),
    ):
        agg_map = {k: v for k, v in agg_map.items() if v}
        traced_map = {k: v for k, v in traced_map.items() if v}
        if traced_map != agg_map:
            problems.append(
                f"{label}: trace={traced_map!r} aggregate={agg_map!r}"
            )
    if problems:
        raise ReconciliationError(
            "trace does not reconcile with aggregate counters:\n  "
            + "\n  ".join(problems)
        )
    totals = acc.totals()
    totals["by_type_total"] = sum(acc.by_type.values())
    totals["flits_total"] = sum(acc.flits_by_type.values())
    return totals
