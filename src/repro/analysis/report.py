"""Result analysis: the paper's figures from run statistics.

Functions here turn :class:`repro.stats.counters.RunStats` (plus the
power models) into the exact rows/series of Figs. 7–9, normalized the
way the paper normalizes:

* Fig. 7 — total dynamic power normalized to the *directory protocol's
  cache* dynamic power, split into cache / network links / routing;
* Fig. 8a — cache dynamic power by event class;
* Fig. 8b — network dynamic power split into link and routing energy;
* Fig. 9a — performance normalized to the directory protocol
  (transactions for the commercial metric, inverse time for the
  scientific metric; bigger is better);
* Fig. 9b — L1 miss breakdown into the six prediction categories.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from ..power.dynamic import DynamicEnergyModel, EnergyBreakdown
from ..sim.config import ChipConfig, DEFAULT_CHIP
from ..stats.counters import MISS_CATEGORIES, RunStats

__all__ = [
    "energy_breakdowns",
    "fig7_rows",
    "fig8a_rows",
    "fig8b_rows",
    "fig9a_performance",
    "fig9b_miss_breakdown",
    "average_miss_links",
]


def energy_breakdowns(
    stats_by_protocol: Mapping[str, RunStats],
    config: ChipConfig = DEFAULT_CHIP,
) -> Dict[str, EnergyBreakdown]:
    """Evaluate the dynamic energy model for each protocol's run."""
    return {
        name: DynamicEnergyModel(name, config).evaluate(stats)
        for name, stats in stats_by_protocol.items()
    }


def fig7_rows(
    stats_by_protocol: Mapping[str, RunStats],
    config: ChipConfig = DEFAULT_CHIP,
    baseline: str = "directory",
) -> Dict[str, Dict[str, float]]:
    """Fig. 7: normalized total dynamic power with breakdown."""
    energies = energy_breakdowns(stats_by_protocol, config)
    ref = energies[baseline].cache_energy
    return {name: e.normalized(ref) for name, e in energies.items()}


def fig8a_rows(
    stats_by_protocol: Mapping[str, RunStats],
    config: ChipConfig = DEFAULT_CHIP,
    baseline: str = "directory",
) -> Dict[str, Dict[str, float]]:
    """Fig. 8a: cache dynamic power by event class, normalized."""
    energies = energy_breakdowns(stats_by_protocol, config)
    ref = energies[baseline].cache_energy
    return {
        name: {k: v / ref for k, v in e.cache_events.items()}
        for name, e in energies.items()
    }


def fig8b_rows(
    stats_by_protocol: Mapping[str, RunStats],
    config: ChipConfig = DEFAULT_CHIP,
    baseline: str = "directory",
) -> Dict[str, Dict[str, float]]:
    """Fig. 8b: network dynamic power (links vs routing), normalized."""
    energies = energy_breakdowns(stats_by_protocol, config)
    ref = energies[baseline].network_energy or 1.0
    return {
        name: {
            "links": e.link_energy / ref,
            "routing": e.routing_energy / ref,
            "bus": e.bus_energy / ref,
            "total": e.network_energy / ref,
        }
        for name, e in energies.items()
    }


def fig9a_performance(
    stats_by_protocol: Mapping[str, RunStats],
    metric: str = "transactions",
    baseline: str = "directory",
) -> Dict[str, float]:
    """Fig. 9a: performance normalized to the directory (bigger=better)."""
    def score(stats: RunStats) -> float:
        if metric == "transactions":
            return stats.operations
        if metric == "time":
            return 1.0 / stats.cycles if stats.cycles else 0.0
        raise ValueError(f"unknown metric {metric!r}")

    ref = score(stats_by_protocol[baseline])
    return {name: score(s) / ref for name, s in stats_by_protocol.items()}


def fig9b_miss_breakdown(
    stats_by_protocol: Mapping[str, RunStats],
) -> Dict[str, Dict[str, float]]:
    """Fig. 9b: share of L1 misses per prediction category."""
    rows: Dict[str, Dict[str, float]] = {}
    for name, stats in stats_by_protocol.items():
        total = sum(stats.miss_categories.values()) or 1
        rows[name] = {c: stats.miss_categories[c] / total for c in MISS_CATEGORIES}
    return rows


def average_miss_links(
    stats_by_protocol: Mapping[str, RunStats],
) -> Dict[str, Optional[float]]:
    """Average links traversed per L1 miss (the Sec. V-D discussion).

    A protocol whose run recorded no misses maps to ``None`` rather
    than a fake 0-link average.
    """
    return {
        name: stats.miss_links.mean for name, stats in stats_by_protocol.items()
    }
