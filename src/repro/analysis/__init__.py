"""Analysis: the paper's figures from run statistics."""
from .ascii import grouped_bars, hbar, stacked_bars
from .linkload import area_crossing_flits, heatmap, hotspots, tile_load
from .report import (
    average_miss_links,
    energy_breakdowns,
    fig7_rows,
    fig8a_rows,
    fig8b_rows,
    fig9a_performance,
    fig9b_miss_breakdown,
)
