"""Terminal-friendly rendering of the paper's figures.

The evaluation figures are stacked bar charts; this module renders
them as Unicode bars so the benchmark harness and the examples can show
the *shape* of a result directly in the terminal, without any plotting
dependency.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["hbar", "stacked_bars", "grouped_bars"]

_BLOCKS = " ▏▎▍▌▋▊▉█"


def hbar(value: float, scale: float, width: int = 40) -> str:
    """One horizontal bar for ``value`` with ``scale`` = full width."""
    if scale <= 0:
        return ""
    frac = max(0.0, min(1.0, value / scale))
    cells = frac * width
    full = int(cells)
    rem = int((cells - full) * 8)
    bar = "█" * full
    if rem and full < width:
        bar += _BLOCKS[rem]
    return bar


def stacked_bars(
    rows: Mapping[str, Mapping[str, float]],
    segments: Sequence[str],
    width: int = 48,
    title: str = "",
) -> str:
    """Render stacked horizontal bars (one row per key).

    ``rows`` maps a label to per-segment values; each segment gets a
    distinct fill character so the stacking is readable without color.
    """
    fills = "█▓▒░╳+o·"
    totals = {
        label: sum(values.get(s, 0.0) for s in segments)
        for label, values in rows.items()
    }
    scale = max(totals.values(), default=1.0) or 1.0
    lines = []
    if title:
        lines.append(title)
    legend = "  ".join(
        f"{fills[i % len(fills)]}={seg}" for i, seg in enumerate(segments)
    )
    lines.append(f"  [{legend}]")
    for label, values in rows.items():
        bar = ""
        for i, seg in enumerate(segments):
            cells = int(round(values.get(seg, 0.0) / scale * width))
            bar += fills[i % len(fills)] * cells
        lines.append(f"  {label:<16} {bar} {totals[label]:.3f}")
    return "\n".join(lines)


def grouped_bars(
    values: Mapping[str, float], width: int = 40, title: str = ""
) -> str:
    """Render plain labelled bars, scaled to the maximum value."""
    scale = max(values.values(), default=1.0) or 1.0
    lines = [title] if title else []
    for label, v in values.items():
        lines.append(f"  {label:<16} {hbar(v, scale, width):<{width}} {v:.3f}")
    return "\n".join(lines)
