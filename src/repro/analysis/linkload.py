"""Per-link traffic analysis (NoC hotspot study).

Sec. V-D argues that the area protocols shorten the average distance
messages travel; a complementary view is *where* the flits go.  With
``NocConfig.track_link_load`` enabled the network records flits per
directed link; this module turns that into per-tile forwarding load, a
hotspot ranking and a terminal heat map.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

from ..noc.network import NetworkStats
from ..noc.topology import Mesh

__all__ = ["tile_load", "hotspots", "area_crossing_flits", "heatmap"]

_SHADES = " ░▒▓█"


def tile_load(stats: NetworkStats, mesh: Mesh) -> List[int]:
    """Flits forwarded per tile (the load on each tile's router)."""
    load = [0] * mesh.n_tiles
    for (src, _dst), flits in stats.link_load.items():
        load[src] += flits
    return load


def hotspots(
    stats: NetworkStats, mesh: Mesh, top: int = 5
) -> List[Tuple[Tuple[int, int], int]]:
    """The ``top`` busiest directed links as ``((src, dst), flits)``."""
    return sorted(stats.link_load.items(), key=lambda kv: -kv[1])[:top]


def area_crossing_flits(
    stats: NetworkStats, mesh: Mesh, area_of: Mapping[int, int]
) -> Dict[str, int]:
    """Flit·links split into intra-area and inter-area traffic.

    The area protocols' pitch is precisely that deduplicated-data
    traffic stops crossing area boundaries.
    """
    intra = 0
    inter = 0
    for (src, dst), flits in stats.link_load.items():
        if area_of[src] == area_of[dst]:
            intra += flits
        else:
            inter += flits
    return {"intra_area": intra, "inter_area": inter}


def heatmap(stats: NetworkStats, mesh: Mesh) -> str:
    """Terminal heat map of per-tile router load."""
    load = tile_load(stats, mesh)
    peak = max(load) or 1
    lines = []
    for y in range(mesh.height):
        row = ""
        for x in range(mesh.width):
            v = load[mesh.tile_at(x, y)]
            shade = _SHADES[min(len(_SHADES) - 1, int(v / peak * (len(_SHADES) - 1) + 0.5))]
            row += shade * 2
        lines.append(row)
    lines.append(f"(peak: {peak} flits forwarded by one tile)")
    return "\n".join(lines)
