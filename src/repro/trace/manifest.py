"""Per-run provenance manifests.

A :class:`RunManifest` is the "what exactly produced these numbers"
document written alongside a run's results: the canonical-config
fingerprint and full spec document, the seed, the git revision of the
simulator tree, both schema versions (manifest + stats), the measured
wall time, the active ``REPRO_FAST_PATH`` setting, and which
instruments (tracer, checker) were attached.  Two runs with equal
fingerprints and seeds are bit-identical by the determinism suite, so
the manifest is sufficient to reproduce or cache a result.
"""

from __future__ import annotations

import json
import subprocess
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

__all__ = ["MANIFEST_SCHEMA_VERSION", "RunManifest", "git_rev"]

#: bump when the manifest document shape changes
MANIFEST_SCHEMA_VERSION = 2

#: loadable document versions (2 added the ``watchdog`` verdict; a
#: version-1 document simply has no verdict recorded)
_LOADABLE_SCHEMAS = (1, 2)


def git_rev(repo_dir: Optional[Union[str, Path]] = None) -> str:
    """Current git revision (``unknown`` outside a checkout)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=repo_dir or Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):  # pragma: no cover
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


@dataclass
class RunManifest:
    """Provenance for one simulated run."""

    protocol: str
    workload: str
    seed: int
    cycles: int
    warmup: int
    #: sha256 over the spec's canonical JSON (``api.spec_fingerprint``)
    config_fingerprint: str
    git_rev: str
    stats_schema: int
    wall_time_s: float
    created_unix: float
    fast_path: bool
    #: simulation engine the run used (``"object"`` or ``"array"``);
    #: provenance only — the engines are pinned bit-identical
    engine: str = "object"
    #: attached instruments, e.g. ``["tracer", "checker"]``
    instruments: List[str] = field(default_factory=list)
    #: progress-watchdog verdict: ``"ok"``, ``"off"``, or
    #: ``"livelock: <diagnostic>"`` when the run was aborted stuck
    watchdog: Optional[str] = None
    trace_path: Optional[str] = None
    #: the full ``RunSpec`` document (``RunSpec.to_dict()``)
    spec: Dict[str, Any] = field(default_factory=dict)
    schema: int = MANIFEST_SCHEMA_VERSION

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "RunManifest":
        if doc.get("schema") not in _LOADABLE_SCHEMAS:
            raise ValueError(
                f"unsupported manifest schema {doc.get('schema')!r} "
                f"(expected one of {_LOADABLE_SCHEMAS})"
            )
        return cls(
            protocol=doc["protocol"],
            workload=doc["workload"],
            seed=doc["seed"],
            cycles=doc["cycles"],
            warmup=doc["warmup"],
            config_fingerprint=doc["config_fingerprint"],
            git_rev=doc["git_rev"],
            stats_schema=doc["stats_schema"],
            wall_time_s=doc["wall_time_s"],
            created_unix=doc["created_unix"],
            fast_path=doc["fast_path"],
            engine=doc.get("engine", "object"),
            instruments=list(doc.get("instruments", [])),
            watchdog=doc.get("watchdog"),
            trace_path=doc.get("trace_path"),
            spec=dict(doc.get("spec", {})),
            schema=doc["schema"],
        )

    def write(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=1, sort_keys=True))
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "RunManifest":
        return cls.from_dict(json.loads(Path(path).read_text()))
