"""The :class:`Tracer` — the one object instrumented code talks to.

Instrumented classes (``CoherenceProtocolBase``, ``Network``,
``SetAssocCache``) each carry a ``_trace`` attribute that is ``None``
by default; :func:`repro.api.attach_tracer` points them all at one
shared ``Tracer``.  Hot paths therefore pay a single ``is not None``
test when tracing is off, and nothing at all on the L1 read-hit path
(which never consults ``_trace``).

Timing note: protocol helpers sometimes pass ``now=0`` into the
network (e.g. ``mem_fetch`` scheduling), so the tracer never trusts a
caller-supplied ``now`` — it stamps every event from a *clock
callable* that reads the simulator's current cycle (accurate under
both ``REPRO_FAST_PATH`` settings).

Address attribution: ``Network.send`` has no address parameter, so the
protocol sets ``tracer.ctx = (tile, block)`` when it starts servicing
a miss (and temporarily switches it to the victim block around
eviction hooks).  NoC and cache events inherit the block from that
context.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from .events import TraceEvent
from .sink import TraceSink

__all__ = ["Tracer"]


class Tracer:
    """Stamps, contextualises and forwards trace events to a sink."""

    __slots__ = ("sink", "clock", "ctx")

    def __init__(self, sink: TraceSink, clock: Callable[[], int]) -> None:
        self.sink = sink
        self.clock = clock
        #: ``(tile, block)`` of the miss currently being serviced, or None
        self.ctx: Optional[Tuple[int, int]] = None

    # -- protocol layer -------------------------------------------------

    def transition(
        self,
        tile: int,
        addr: int,
        state_from: str,
        state_to: str,
        cause: str,
    ) -> None:
        """An L1 line at ``tile`` moved ``state_from`` -> ``state_to``."""
        self.sink.emit(
            TraceEvent(
                self.clock(),
                "protocol",
                "transition",
                tile,
                addr,
                {"from": state_from, "to": state_to, "cause": cause},
            )
        )

    # -- noc layer ------------------------------------------------------

    def noc_send(
        self,
        src: int,
        dst: int,
        msg_type: str,
        flits: int,
        hops: int,
        latency: int,
    ) -> None:
        """A unicast entered the mesh; a matching ``deliver`` follows."""
        tile, addr = self.ctx or (None, None)
        cycle = self.clock()
        self.sink.emit(
            TraceEvent(
                cycle,
                "noc",
                "send",
                tile,
                addr,
                {
                    "src": src,
                    "dst": dst,
                    "msg_type": msg_type,
                    "flits": flits,
                    "hops": hops,
                    "latency": latency,
                },
            )
        )
        self.sink.emit(
            TraceEvent(
                cycle + latency,
                "noc",
                "deliver",
                tile,
                addr,
                {"src": src, "dst": dst, "msg_type": msg_type},
            )
        )

    def noc_local(self, src: int, msg_type: str, flits: int) -> None:
        """A tile messaged itself; the message never enters the mesh."""
        tile, addr = self.ctx or (None, None)
        self.sink.emit(
            TraceEvent(
                self.clock(),
                "noc",
                "local",
                tile,
                addr,
                {"src": src, "msg_type": msg_type, "flits": flits},
            )
        )

    def noc_broadcast(
        self,
        src: int,
        msg_type: str,
        flits: int,
        links: int,
        depth: int,
        latency: int,
    ) -> None:
        """A tree broadcast crossed ``links`` mesh links."""
        tile, addr = self.ctx or (None, None)
        self.sink.emit(
            TraceEvent(
                self.clock(),
                "noc",
                "broadcast",
                tile,
                addr,
                {
                    "src": src,
                    "msg_type": msg_type,
                    "flits": flits,
                    "links": links,
                    "depth": depth,
                    "latency": latency,
                },
            )
        )

    # -- cache layer ----------------------------------------------------

    def cache_event(self, structure: str, event: str, block: int) -> None:
        """A ``fill`` / ``evict`` / ``invalidate`` on one array."""
        self.sink.emit(
            TraceEvent(
                self.clock(),
                "cache",
                event,
                None,
                block,
                {"structure": structure},
            )
        )

    # -- consolidation layer --------------------------------------------

    def consolidation(
        self,
        kind: str,
        vm: int,
        tiles: Tuple[int, ...] = (),
        pages: int = 0,
        moved: int = 0,
        flushed: int = 0,
    ) -> None:
        """A dynamic-consolidation event fired (``vm_migrate``,
        ``vm_depart``, ``vm_arrive``, ``dedup_break``, ``dedup_merge``)
        with its effect counters — blocks moved/flushed, pages churned.
        """
        self.sink.emit(
            TraceEvent(
                self.clock(),
                "consolidation",
                kind,
                None,
                None,
                {
                    "vm": vm,
                    "tiles": list(tiles),
                    "pages": pages,
                    "moved": moved,
                    "flushed": flushed,
                },
            )
        )

    # -- run layer ------------------------------------------------------

    def marker(self, name: str) -> None:
        """A run-lifecycle marker (e.g. ``reset_stats`` after warmup)."""
        self.sink.emit(TraceEvent(self.clock(), "run", "marker", None, None, {"name": name}))

    def close(self) -> None:
        self.sink.close()
