"""Labelled counter/histogram registry.

A thin, dependency-free metrics model: a :class:`MetricsRegistry`
holds :class:`Counter` and :class:`Histogram` instruments keyed by
``(name, labels)``.  :meth:`MetricsRegistry.from_run_stats`
re-expresses a :class:`~repro.stats.counters.RunStats` through the
registry, so every aggregate the simulator produces is addressable by
name + labels instead of attribute poking — e.g.::

    reg = MetricsRegistry.from_run_stats(stats)
    reg.counter("miss_categories", category="pred_owner_hit").value
    reg.counter("network_flits_by_type", msg_type="Data").value
    reg.histogram("miss_latency").mean

``snapshot()`` flattens the registry into a plain JSON-ready dict for
persistence next to a manifest.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..stats.counters import RunStats

__all__ = ["Counter", "Histogram", "MetricsRegistry"]

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically growing integer."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counter({self.name}{dict(self.labels)}={self.value})"


class Histogram:
    """Count/total/min/max summary (no per-sample storage)."""

    __slots__ = ("name", "labels", "count", "total", "minimum", "maximum")

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.count = 0
        self.total = 0
        self.minimum = 0
        self.maximum = 0

    def observe(self, value: int) -> None:
        if self.count == 0:
            self.minimum = value
            self.maximum = value
        else:
            if value < self.minimum:
                self.minimum = value
            if value > self.maximum:
                self.maximum = value
        self.count += 1
        self.total += value

    def load(self, count: int, total: int, minimum: int, maximum: int) -> None:
        """Adopt a pre-aggregated summary (e.g. a LatencyAccumulator)."""
        self.count = count
        self.total = total
        self.minimum = minimum
        self.maximum = maximum

    @property
    def mean(self) -> Optional[float]:
        """Sample mean, ``None`` when empty (matches
        :class:`~repro.stats.counters.LatencyAccumulator`)."""
        return self.total / self.count if self.count else None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mean = "n/a" if self.mean is None else f"{self.mean:.2f}"
        return (
            f"Histogram({self.name}{dict(self.labels)} "
            f"n={self.count} mean={mean})"
        )


class MetricsRegistry:
    """Instruments keyed by ``(name, sorted labels)``."""

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelKey], Counter] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Histogram] = {}

    def counter(self, name: str, **labels: str) -> Counter:
        key = (name, _label_key(labels))
        inst = self._counters.get(key)
        if inst is None:
            inst = Counter(name, key[1])
            self._counters[key] = inst
        return inst

    def histogram(self, name: str, **labels: str) -> Histogram:
        key = (name, _label_key(labels))
        inst = self._histograms.get(key)
        if inst is None:
            inst = Histogram(name, key[1])
            self._histograms[key] = inst
        return inst

    def counters(self) -> Tuple[Counter, ...]:
        return tuple(self._counters.values())

    def histograms(self) -> Tuple[Histogram, ...]:
        return tuple(self._histograms.values())

    def snapshot(self) -> Dict:
        """Flat JSON-ready view: ``name{k=v,...}`` -> value/summary."""

        def fmt(name: str, labels: LabelKey) -> str:
            if not labels:
                return name
            inner = ",".join(f"{k}={v}" for k, v in labels)
            return f"{name}{{{inner}}}"

        out: Dict = {"counters": {}, "histograms": {}}
        for (name, labels), c in sorted(self._counters.items()):
            out["counters"][fmt(name, labels)] = c.value
        for (name, labels), h in sorted(self._histograms.items()):
            out["histograms"][fmt(name, labels)] = {
                "count": h.count,
                "total": h.total,
                "minimum": h.minimum,
                "maximum": h.maximum,
            }
        return out

    @classmethod
    def from_run_stats(cls, stats: "RunStats") -> "MetricsRegistry":
        """Re-express a :class:`RunStats` as labelled instruments."""
        reg = cls()
        for name in (
            "cycles",
            "operations",
            "reads",
            "writes",
            "l1_hits",
            "l1_misses",
            "l2_data_hits",
            "l2_misses",
            "memory_fetches",
            "writebacks",
            "upgrades",
            "cow_breaks",
            "broadcast_invalidations",
            "unicast_invalidations",
            "retries",
        ):
            reg.counter(name).inc(getattr(stats, name))
        for category, count in stats.miss_categories.items():
            reg.counter("miss_categories", category=category).inc(count)
        for acc_name in ("miss_latency", "miss_links"):
            acc = getattr(stats, acc_name)
            reg.histogram(acc_name).load(
                acc.count, acc.total, acc.minimum, acc.maximum
            )
        for structure, access in stats.cache_access.items():
            for fld in (
                "tag_reads",
                "tag_writes",
                "data_reads",
                "data_writes",
                "hits",
                "misses",
                "evictions",
            ):
                reg.counter(
                    f"cache_{fld}", structure=structure
                ).inc(getattr(access, fld))
        net = stats.network
        for name in (
            "messages",
            "local_messages",
            "flit_link_traversals",
            "router_traversals",
            "routing_events",
            "broadcasts",
        ):
            reg.counter(f"network_{name}").inc(getattr(net, name))
        for msg_type, count in net.by_type.items():
            reg.counter("network_by_type", msg_type=msg_type).inc(count)
        for msg_type, flits in net.flits_by_type.items():
            reg.counter("network_flits_by_type", msg_type=msg_type).inc(flits)
        for key, count in stats.prediction.items():
            reg.counter("prediction", counter=key).inc(count)
        return reg
