"""Structured tracing, metrics and run manifests.

The observability layer of the simulator.  Three kinds of artefact:

* **Trace events** (:mod:`repro.trace.events`) — structured records of
  protocol state transitions, NoC message lifecycles and cache
  fill/evict/invalidate actions, emitted through a :class:`Tracer`
  into a :class:`TraceSink` (ring buffer, JSONL file, filter chain).
* **Metrics** (:mod:`repro.trace.metrics`) — a labelled
  counter/histogram registry; :func:`MetricsRegistry.from_run_stats`
  re-expresses a :class:`~repro.stats.counters.RunStats` through it.
* **Manifests** (:mod:`repro.trace.manifest`) — a per-run provenance
  document (config fingerprint, seed, git rev, schema versions,
  wall time, enabled instruments) written alongside results.

Tracing is strictly zero-overhead when off: every instrumented object
carries a ``_trace`` attribute that is ``None`` by default, and the
hot paths only ever pay one ``is not None`` test on the rare (miss /
message / fill) paths.  The determinism suite pins ``trace=off`` runs
bit-identical to untraced ones and asserts that ``trace=on`` event
streams reconcile exactly with the aggregate counters
(:mod:`repro.analysis.tracetools`).
"""

from .events import TraceEvent
from .manifest import MANIFEST_SCHEMA_VERSION, RunManifest
from .metrics import Counter, Histogram, MetricsRegistry
from .sink import (
    CountingSink,
    FilterSink,
    JsonlFileSink,
    ListSink,
    RingBufferSink,
    TraceSink,
)
from .tracer import Tracer

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "Counter",
    "CountingSink",
    "FilterSink",
    "Histogram",
    "JsonlFileSink",
    "ListSink",
    "MetricsRegistry",
    "RingBufferSink",
    "RunManifest",
    "TraceEvent",
    "TraceSink",
    "Tracer",
]
