"""Trace sinks: where emitted events go.

A sink is anything with ``emit(event)`` and ``close()`` — the
structural :class:`TraceSink` protocol.  The stock sinks:

* :class:`RingBufferSink` — keeps the last ``capacity`` events in
  memory (or every event with ``capacity=None``); iterate it to read.
* :class:`JsonlFileSink`  — one JSON object per line, append-only.
* :class:`FilterSink`     — forwards the subset matching address /
  tile / event / layer allow-lists to an inner sink.
* :class:`ListSink`       — unbounded in-memory list (tests).
* :class:`CountingSink`   — counts events and discards them (overhead
  measurement: pays the emission cost without the storage).
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import (
    Collection,
    Deque,
    Iterator,
    List,
    Optional,
    Protocol,
    Union,
    runtime_checkable,
)

from .events import TraceEvent

__all__ = [
    "TraceSink",
    "RingBufferSink",
    "JsonlFileSink",
    "FilterSink",
    "ListSink",
    "CountingSink",
]


@runtime_checkable
class TraceSink(Protocol):
    """Structural protocol every sink satisfies."""

    def emit(self, event: TraceEvent) -> None:
        """Record one event."""
        ...

    def close(self) -> None:
        """Flush and release any resources.  Idempotent."""
        ...


class RingBufferSink:
    """Keeps the most recent ``capacity`` events (all if ``None``)."""

    def __init__(self, capacity: Optional[int] = 65536) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.capacity = capacity
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        #: total emitted, including events the ring has since dropped
        self.emitted = 0

    def emit(self, event: TraceEvent) -> None:
        self.emitted += 1
        self._events.append(event)

    def close(self) -> None:
        pass

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    @property
    def dropped(self) -> int:
        """Events that no longer fit in the ring."""
        return self.emitted - len(self._events)


class ListSink:
    """Unbounded in-memory sink (tests and small runs)."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []
        self.emit = self.events.append  # bound once; hot when tracing

    def close(self) -> None:
        pass

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)


class CountingSink:
    """Counts emissions and drops the events."""

    def __init__(self) -> None:
        self.count = 0

    def emit(self, event: TraceEvent) -> None:
        self.count += 1

    def close(self) -> None:
        pass


class JsonlFileSink:
    """One JSON object per line; flattened fields (see ``TraceEvent``)."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._fh = open(self.path, "w", encoding="utf-8")
        self._write = self._fh.write
        self.emitted = 0

    def emit(self, event: TraceEvent) -> None:
        self.emitted += 1
        self._write(json.dumps(event.to_dict(), separators=(",", ":")))
        self._write("\n")

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "JsonlFileSink":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class FilterSink:
    """Forwards events matching every configured allow-list.

    ``None`` disables a dimension; an empty collection matches nothing.
    Address and tile filters compare the event's own ``addr``/``tile``
    fields; events carrying ``None`` there only pass when the
    corresponding filter is disabled.  The forwarded stream is always a
    subset of the unfiltered stream (property-tested).
    """

    def __init__(
        self,
        inner: TraceSink,
        addrs: Optional[Collection[int]] = None,
        tiles: Optional[Collection[int]] = None,
        events: Optional[Collection[str]] = None,
        layers: Optional[Collection[str]] = None,
    ) -> None:
        self.inner = inner
        self.addrs = None if addrs is None else frozenset(addrs)
        self.tiles = None if tiles is None else frozenset(tiles)
        self.events = None if events is None else frozenset(events)
        self.layers = None if layers is None else frozenset(layers)
        self.seen = 0
        self.forwarded = 0

    def matches(self, event: TraceEvent) -> bool:
        if self.layers is not None and event.layer not in self.layers:
            return False
        if self.events is not None and event.event not in self.events:
            return False
        if self.addrs is not None and event.addr not in self.addrs:
            return False
        if self.tiles is not None and event.tile not in self.tiles:
            return False
        return True

    def emit(self, event: TraceEvent) -> None:
        self.seen += 1
        if self.matches(event):
            self.forwarded += 1
            self.inner.emit(event)

    def close(self) -> None:
        self.inner.close()
