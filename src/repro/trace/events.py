"""The trace event record.

One :class:`TraceEvent` describes one observable action at one of the
three instrumented layers:

* ``protocol`` — an L1 coherence state transition:
  ``(cycle, tile, addr, "transition", state_from, state_to, cause)``;
  plus ``run``-layer markers (e.g. the post-warmup statistics reset).
* ``noc`` — a message lifecycle step: ``send`` / ``deliver`` for
  unicasts (with hop count and flit class), ``local`` for intra-tile
  self-sends that never enter the NoC, ``broadcast`` for tree
  broadcasts (with the number of tree links).
* ``cache`` — a structure-level ``fill`` / ``evict`` / ``invalidate``
  on one set-associative array (the structure name, e.g. ``l1[12]``,
  travels in ``attrs``).
* ``consolidation`` — a dynamic-consolidation event (``vm_migrate``,
  ``vm_depart``, ``vm_arrive``, ``dedup_break``, ``dedup_merge``) with
  the VM, target tiles, churned pages and blocks moved/flushed in
  ``attrs``.

``addr`` is the *block number* (the physical address shifted right by
the block-offset bits) — the same unit every protocol structure is
keyed by.  Events are plain immutable tuples so sinks can store
millions of them cheaply; the JSONL form flattens ``attrs`` into the
record with the five fixed fields first.
"""

from __future__ import annotations

from typing import Any, Mapping, NamedTuple, Optional

__all__ = ["TraceEvent", "FIXED_FIELDS"]

#: the fixed record fields, in serialization order
FIXED_FIELDS = ("cycle", "layer", "event", "tile", "addr")


class TraceEvent(NamedTuple):
    """One structured trace record."""

    cycle: int
    #: ``protocol`` | ``noc`` | ``cache`` | ``run`` | ``consolidation``
    layer: str
    #: event name within the layer (``transition``, ``send``, ``fill``, …)
    event: str
    #: tile the event is attributed to (``None`` for structure events
    #: whose tile is encoded in the structure name)
    tile: Optional[int]
    #: block number, or ``None`` for events with no address context
    addr: Optional[int]
    #: free-form detail (states, cause, hops, flits, msg_type, …)
    attrs: Mapping[str, Any]

    def to_dict(self) -> dict:
        """Flat JSON-ready form: fixed fields first, then ``attrs``."""
        out = {
            "cycle": self.cycle,
            "layer": self.layer,
            "event": self.event,
            "tile": self.tile,
            "addr": self.addr,
        }
        out.update(self.attrs)
        return out

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "TraceEvent":
        """Inverse of :meth:`to_dict`."""
        attrs = {k: v for k, v in doc.items() if k not in FIXED_FIELDS}
        return cls(
            cycle=doc["cycle"],
            layer=doc["layer"],
            event=doc["event"],
            tile=doc.get("tile"),
            addr=doc.get("addr"),
            attrs=attrs,
        )
