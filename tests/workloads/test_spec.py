"""Unit tests for the benchmark specifications (Table IV)."""

import pytest

from repro.workloads.spec import (
    BENCHMARKS,
    MIXES,
    WorkloadSpec,
    spec_names,
    workload_for_vm,
)

# Table IV: memory saved by deduplication per benchmark
TABLE_IV_SAVINGS = {
    "apache": 0.2172,
    "jbb": 0.2388,
    "radix": 0.2418,
    "lu": 0.3271,
    "volrend": 0.30,  # the paper's cell is unreadable; ~30% assumed
    "tomcatv": 0.3682,
}


def test_all_benchmarks_present():
    assert set(BENCHMARKS) == set(TABLE_IV_SAVINGS)
    assert set(MIXES) == {"mixed-com", "mixed-sci"}
    assert set(spec_names()) == set(BENCHMARKS) | set(MIXES)


@pytest.mark.parametrize("name,target", sorted(TABLE_IV_SAVINGS.items()))
def test_dedup_savings_match_table_iv(name, target):
    """4 VMs x 16 threads, as in the paper's evaluation, including the
    10 guest-OS pages the generator deduplicates across all VMs."""
    spec = BENCHMARKS[name]
    saving = spec.expected_dedup_saving(threads_per_vm=16, n_vms=4, os_pages=10)
    assert saving == pytest.approx(target, abs=0.06)


def test_fraction_validation():
    with pytest.raises(ValueError):
        WorkloadSpec(
            name="bad",
            private_pages=1,
            vm_shared_pages=1,
            dedup_pages=1,
            frac_private=0.5,
            frac_vm_shared=0.5,
            frac_dedup=0.5,
            write_private=0.1,
            write_vm_shared=0.1,
            write_dedup=0.0,
            zipf_s=1.0,
        )


def test_write_fraction_validation():
    with pytest.raises(ValueError):
        WorkloadSpec(
            name="bad",
            private_pages=1,
            vm_shared_pages=1,
            dedup_pages=1,
            frac_private=1.0,
            frac_vm_shared=0.0,
            frac_dedup=0.0,
            write_private=1.5,
            write_vm_shared=0.0,
            write_dedup=0.0,
            zipf_s=1.0,
        )


def test_l1_vs_l2_dominated_classes():
    """Sec. V-C: apache/jbb are L2-power-dominated (big working sets),
    the scientific codes fit the L1."""
    for big in ("apache", "jbb"):
        for small in ("radix", "lu", "volrend", "tomcatv"):
            assert BENCHMARKS[big].logical_pages(16) > 3 * BENCHMARKS[
                small
            ].logical_pages(16)


def test_jbb_has_the_largest_working_set():
    sizes = {n: s.logical_pages(16) for n, s in BENCHMARKS.items()}
    assert max(sizes, key=sizes.get) == "jbb"


def test_metrics_match_table_iv():
    assert BENCHMARKS["apache"].metric == "transactions"
    assert BENCHMARKS["jbb"].metric == "transactions"
    for sci in ("radix", "lu", "volrend", "tomcatv"):
        assert BENCHMARKS[sci].metric == "time"


def test_mix_lookup():
    assert workload_for_vm("mixed-com", 0).name == "apache"
    assert workload_for_vm("mixed-com", 2).name == "jbb"
    assert workload_for_vm("mixed-sci", 3).name == "tomcatv"
    assert workload_for_vm("radix", 2).name == "radix"
    with pytest.raises(KeyError):
        workload_for_vm("nope", 0)


def test_dedup_writes_are_rare():
    """Deduplicated pages are read-only in practice (Sec. I)."""
    for spec in BENCHMARKS.values():
        assert spec.write_dedup <= 0.01
