"""Unit tests for the synthetic trace generator."""

import itertools

import pytest

from repro.core.area import AreaMap
from repro.mem.address import AddressMap
from repro.workloads.generator import ConsolidatedWorkload
from repro.workloads.placement import VMPlacement


@pytest.fixture
def setup():
    areas = AreaMap(4, 4, 4)
    placement = VMPlacement.area_aligned(areas, 4)
    am = AddressMap(n_tiles=16)
    return placement, am


def make(setup, name="apache", seed=0, os_pages=10):
    placement, am = setup
    return ConsolidatedWorkload(name, placement, am, seed=seed, os_pages=os_pages)


def test_trace_is_deterministic(setup):
    a = make(setup, seed=7)
    b = make(setup, seed=7)
    ops_a = list(itertools.islice(a.trace(3), 500))
    ops_b = list(itertools.islice(b.trace(3), 500))
    assert ops_a == ops_b


def test_different_seeds_differ(setup):
    a = make(setup, seed=1)
    b = make(setup, seed=2)
    ops_a = [o.addr for o in itertools.islice(a.trace(3), 200)]
    ops_b = [o.addr for o in itertools.islice(b.trace(3), 200)]
    assert ops_a != ops_b


def test_addresses_are_valid_and_mapped(setup):
    placement, am = setup
    w = make(setup)
    for tile in (0, 5, 15):
        for op in itertools.islice(w.trace(tile), 300):
            assert 0 <= op.addr <= am.max_address
            assert op.addr % am.block_bytes == 0
            assert op.think >= 1


def test_dedup_saving_matches_spec_prediction(setup):
    # without OS pages the measured ratio equals the spec's closed form
    w = make(setup, "apache", os_pages=0)
    spec = w.spec_by_vm[0]
    expected = spec.expected_dedup_saving(threads_per_vm=4, n_vms=4)  # os_pages=0
    assert w.dedup_saving == pytest.approx(expected, abs=1e-9)


def test_os_pages_raise_dedup_savings(setup):
    without = make(setup, "apache", os_pages=0)
    with_os = make(setup, "apache", os_pages=10)
    assert with_os.dedup_saving > without.dedup_saving


def test_mixed_workloads_share_os_pages(setup):
    """The paper's heterogeneous mixes still save ~15% via the guest
    OS pages, identical across all VMs."""
    w = make(setup, "mixed-sci", os_pages=10)
    assert w.dedup_saving > 0.05


def test_vms_share_dedup_frames_but_not_private(setup):
    placement, am = setup
    w = make(setup, "lu")
    addrs_by_vm = {}
    for vm, tile in ((0, 0), (1, 2)):
        addrs = {
            am.page_of(op.addr)
            for op in itertools.islice(w.trace(tile), 4000)
        }
        addrs_by_vm[vm] = addrs
    shared_pages = addrs_by_vm[0] & addrs_by_vm[1]
    # deduplicated physical pages appear in both VMs' streams
    assert shared_pages, "expected cross-VM deduplicated pages"
    for p in shared_pages:
        assert w.table.is_deduplicated_ppage(p)


def test_writes_to_dedup_pages_trigger_cow(setup):
    placement, am = setup
    w = make(setup, "apache")  # write_dedup = 0.001
    drained = 0
    for tile in placement.tiles_used:
        for _ in itertools.islice(w.trace(tile), 3000):
            drained += 1
        if w.cow_breaks:
            break
    assert w.cow_breaks >= 1


def test_temporal_locality_present(setup):
    """The reuse window must produce a hit rate well above the
    footprint-uniform baseline."""
    w = make(setup, "apache")
    from collections import OrderedDict

    cache: OrderedDict = OrderedDict()
    hits = 0
    n = 5000
    for op in itertools.islice(w.trace(0), n):
        b = op.addr >> 6
        if b in cache:
            hits += 1
            cache.move_to_end(b)
        else:
            cache[b] = True
            if len(cache) > 256:
                cache.popitem(last=False)
    assert hits / n > 0.6


def test_mixed_workload_assigns_specs_per_vm(setup):
    w = make(setup, "mixed-com")
    assert w.spec_by_vm[0].name == "apache"
    assert w.spec_by_vm[2].name == "jbb"
    # apache VMs deduplicate among themselves only
    assert w.dedup_saving > 0


def test_single_vm_of_a_benchmark_has_no_dedup():
    areas = AreaMap(4, 4, 4)
    placement = VMPlacement({0: areas.tiles_of(0)})
    am = AddressMap(n_tiles=16)
    w = ConsolidatedWorkload("apache", placement, am, seed=0, os_pages=0)
    assert w.dedup_saving == 0.0
    # but the trace still works
    ops = list(itertools.islice(w.trace(0), 100))
    assert len(ops) == 100


def test_write_fractions_roughly_respected(setup):
    w = make(setup, "radix")
    ops = list(itertools.islice(w.trace(0), 8000))
    write_frac = sum(o.is_write for o in ops) / len(ops)
    # radix: ~0.3 private / 0.12 shared weighted -> ~0.2 overall
    assert 0.1 < write_frac < 0.35
