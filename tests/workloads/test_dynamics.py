"""Unit tests for dynamic-consolidation plans (events, validation,
serialization and seeded generation)."""

import json

import pytest

from repro.sim.config import ConfigError
from repro.workloads.dynamics import (
    EVENT_KINDS,
    ConsolidationEvent,
    ConsolidationPlan,
)

#: a 4x4 chip's area-aligned placement for three VMs (2x2 areas):
#: area 3 — tiles (10, 11, 14, 15) — starts free
TILES_BY_VM = {
    0: (0, 1, 4, 5),
    1: (2, 3, 6, 7),
    2: (8, 9, 12, 13),
}
N_TILES = 16
CYCLES = 10_000
FREE = (10, 11, 14, 15)


def plan_of(*events) -> ConsolidationPlan:
    return ConsolidationPlan(events=tuple(events), seed=1)


# ---------------------------------------------------------------------------
# event / plan serialization


def test_event_round_trip_minimal():
    ev = ConsolidationEvent(cycle=100, kind="vm_depart", vm=2)
    doc = ev.to_dict()
    assert doc == {"cycle": 100, "kind": "vm_depart", "vm": 2}
    assert ConsolidationEvent.from_dict(doc) == ev


def test_event_round_trip_full():
    ev = ConsolidationEvent(
        cycle=5, kind="vm_arrive", vm=3, tiles=FREE, benchmark="jbb"
    )
    assert ConsolidationEvent.from_dict(ev.to_dict()) == ev
    ev = ConsolidationEvent(cycle=7, kind="dedup_break", vm=0, pages=4)
    assert ConsolidationEvent.from_dict(ev.to_dict()) == ev


def test_plan_round_trip_through_json():
    plan = plan_of(
        ConsolidationEvent(200, "vm_migrate", 1, tiles=FREE),
        ConsolidationEvent(500, "dedup_break", 0, pages=3),
    )
    doc = json.loads(json.dumps(plan.to_dict()))
    assert ConsolidationPlan.from_dict(doc) == plan


def test_plan_sorts_events_by_cycle_stably():
    a = ConsolidationEvent(300, "dedup_break", 0, pages=1)
    b = ConsolidationEvent(100, "dedup_break", 1, pages=1)
    # two same-cycle events keep their given order (stable sort)
    c1 = ConsolidationEvent(200, "dedup_break", 2, pages=1)
    c2 = ConsolidationEvent(200, "dedup_merge", 2, pages=1)
    plan = plan_of(a, c1, b, c2)
    assert plan.events == (b, c1, c2, a)
    assert len(plan) == 4


def test_empty_plan_is_falsy_sized():
    assert len(ConsolidationPlan()) == 0
    assert ConsolidationPlan.from_dict({"seed": 0, "events": []}).events == ()


# ---------------------------------------------------------------------------
# validation: every rejection names the offending event index


def check(plan):
    plan.validate(CYCLES, TILES_BY_VM, N_TILES)


def test_valid_storyline_passes():
    check(plan_of(
        ConsolidationEvent(1_000, "vm_migrate", 1, tiles=FREE),
        ConsolidationEvent(2_000, "dedup_break", 0, pages=6),
        ConsolidationEvent(3_000, "dedup_merge", 0, pages=6),
        ConsolidationEvent(4_000, "vm_depart", 2),
        ConsolidationEvent(5_000, "vm_arrive", 3, tiles=(8, 9, 12, 13)),
    ))


def test_unknown_kind_rejected():
    with pytest.raises(ConfigError, match=r"event 0 \(vm_explode, vm 0\)"):
        check(plan_of(ConsolidationEvent(10, "vm_explode", 0)))


def test_cycle_outside_window_rejected():
    with pytest.raises(ConfigError, match="outside the measurement"):
        check(plan_of(
            ConsolidationEvent(CYCLES + 1, "dedup_break", 0, pages=1)
        ))
    with pytest.raises(ConfigError, match="cycle 0"):
        check(plan_of(ConsolidationEvent(0, "dedup_break", 0, pages=1)))


def test_error_names_the_sorted_event_index():
    # events are cycle-sorted before validation, so the index in the
    # message matches the canonical (sorted) order a bundle records
    with pytest.raises(ConfigError, match=r"event 1 \(vm_migrate, vm 9\)"):
        check(plan_of(
            ConsolidationEvent(9_000, "vm_migrate", 9, tiles=FREE),
            ConsolidationEvent(1_000, "dedup_break", 0, pages=1),
        ))


def test_migrate_overlap_rejected():
    with pytest.raises(ConfigError, match=r"overlaps tiles of VM\(s\) \[2\]"):
        check(plan_of(
            ConsolidationEvent(100, "vm_migrate", 1, tiles=(8, 9, 12, 13))
        ))


def test_migrate_thread_count_must_match():
    with pytest.raises(ConfigError, match="2 tiles .* 4 threads"):
        check(plan_of(
            ConsolidationEvent(100, "vm_migrate", 1, tiles=(10, 11))
        ))


def test_migrate_unknown_vm_rejected():
    with pytest.raises(ConfigError, match="VM 7 is not placed"):
        check(plan_of(ConsolidationEvent(100, "vm_migrate", 7, tiles=FREE)))


def test_tiles_outside_chip_rejected():
    with pytest.raises(ConfigError, match=r"tiles \[16\] outside the chip"):
        check(plan_of(
            ConsolidationEvent(100, "vm_migrate", 1, tiles=(10, 11, 14, 16))
        ))


def test_duplicate_target_tiles_rejected():
    with pytest.raises(ConfigError, match="duplicate tiles"):
        check(plan_of(
            ConsolidationEvent(100, "vm_migrate", 1, tiles=(10, 10, 11, 14))
        ))


def test_arrive_on_placed_vm_rejected():
    with pytest.raises(ConfigError, match="VM 2 is already placed"):
        check(plan_of(ConsolidationEvent(100, "vm_arrive", 2, tiles=FREE)))


def test_arrive_needs_a_region():
    with pytest.raises(ConfigError, match="non-empty tile region"):
        check(plan_of(ConsolidationEvent(100, "vm_arrive", 3)))


def test_dedup_needs_pages():
    with pytest.raises(ConfigError, match="pages >= 1"):
        check(plan_of(ConsolidationEvent(100, "dedup_break", 0)))


def test_validation_replays_the_evolving_placement():
    # VM 2 departs at 1000, so its old tiles are migratable at 2000 —
    # and VM 2 itself is gone, so touching it later must fail
    check(plan_of(
        ConsolidationEvent(1_000, "vm_depart", 2),
        ConsolidationEvent(2_000, "vm_migrate", 1, tiles=(8, 9, 12, 13)),
    ))
    with pytest.raises(ConfigError, match="VM 2 is not placed at cycle"):
        check(plan_of(
            ConsolidationEvent(1_000, "vm_depart", 2),
            ConsolidationEvent(2_000, "dedup_break", 2, pages=1),
        ))


def test_migrate_back_onto_own_old_region_is_legal():
    # a VM may move onto tiles it just vacated combined with free ones
    check(plan_of(
        ConsolidationEvent(1_000, "vm_migrate", 1, tiles=FREE),
        ConsolidationEvent(2_000, "vm_migrate", 1, tiles=(2, 3, 6, 7)),
    ))


# ---------------------------------------------------------------------------
# seeded generation


def test_generate_is_deterministic():
    a = ConsolidationPlan.generate(7, CYCLES, TILES_BY_VM, N_TILES, n_events=6)
    b = ConsolidationPlan.generate(7, CYCLES, TILES_BY_VM, N_TILES, n_events=6)
    assert a == b
    assert a.seed == 7


def test_generate_differs_by_seed():
    plans = {
        json.dumps(
            ConsolidationPlan.generate(
                s, CYCLES, TILES_BY_VM, N_TILES, n_events=6
            ).to_dict(),
            sort_keys=True,
        )
        for s in range(8)
    }
    assert len(plans) > 1


@pytest.mark.parametrize("seed", range(12))
def test_generated_plans_always_validate(seed):
    plan = ConsolidationPlan.generate(
        seed, CYCLES, TILES_BY_VM, N_TILES, n_events=8
    )
    plan.validate(CYCLES, TILES_BY_VM, N_TILES)
    for ev in plan.events:
        assert ev.kind in EVENT_KINDS
        assert 1 <= ev.cycle <= CYCLES


def test_generate_restricted_kinds():
    plan = ConsolidationPlan.generate(
        3, CYCLES, TILES_BY_VM, N_TILES, n_events=6,
        kinds=("dedup_break", "dedup_merge"),
    )
    assert plan.events
    assert {ev.kind for ev in plan.events} <= {"dedup_break", "dedup_merge"}
