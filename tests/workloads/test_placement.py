"""Unit tests for VM placement (default and Fig. 6 alternative)."""

import pytest

from repro.core.area import AreaMap
from repro.workloads.placement import VMPlacement


@pytest.fixture
def areas() -> AreaMap:
    return AreaMap(8, 8, 4)


def test_area_aligned_default(areas):
    p = VMPlacement.area_aligned(areas, 4)
    assert p.n_vms == 4
    for vm in range(4):
        assert p.tiles_of(vm) == areas.tiles_of(vm)
        assert p.areas_spanned(vm, areas) == (vm,)
        assert p.threads_per_vm(vm) == 16
    assert p.tiles_used == tuple(range(64))


def test_vm_and_thread_of(areas):
    p = VMPlacement.area_aligned(areas, 4)
    for tile in range(64):
        vm = p.vm_of(tile)
        assert tile in p.tiles_of(vm)
        assert p.tiles_of(vm)[p.thread_of(tile)] == tile


def test_alternative_placement_straddles_areas(areas):
    """Fig. 6 right: each VM spans two areas."""
    p = VMPlacement.alternative(8, 8, 4)
    for vm in range(4):
        spanned = p.areas_spanned(vm, areas)
        assert len(spanned) == 2
        assert p.threads_per_vm(vm) == 16


def test_alternative_covers_chip_once():
    p = VMPlacement.alternative(8, 8, 4)
    assert p.tiles_used == tuple(range(64))


def test_fewer_vms_than_areas(areas):
    p = VMPlacement.area_aligned(areas, 2)
    assert p.n_vms == 2
    assert len(p.tiles_used) == 32


def test_too_many_vms_rejected(areas):
    with pytest.raises(ValueError):
        VMPlacement.area_aligned(areas, 5)


def test_overlapping_assignment_rejected():
    with pytest.raises(ValueError):
        VMPlacement({0: [0, 1], 1: [1, 2]})


def test_empty_vm_rejected():
    with pytest.raises(ValueError):
        VMPlacement({0: []})
    with pytest.raises(ValueError):
        VMPlacement({})


def test_alternative_height_must_divide():
    with pytest.raises(ValueError):
        VMPlacement.alternative(8, 8, 3)


def test_idle_tile_lookup_fails():
    p = VMPlacement({0: [0, 1]})
    with pytest.raises(KeyError):
        p.vm_of(5)
