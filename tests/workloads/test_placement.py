"""Unit tests for VM placement (default and Fig. 6 alternative)."""

import pytest

from repro.core.area import AreaMap
from repro.workloads.placement import VMPlacement


@pytest.fixture
def areas() -> AreaMap:
    return AreaMap(8, 8, 4)


def test_area_aligned_default(areas):
    p = VMPlacement.area_aligned(areas, 4)
    assert p.n_vms == 4
    for vm in range(4):
        assert p.tiles_of(vm) == areas.tiles_of(vm)
        assert p.areas_spanned(vm, areas) == (vm,)
        assert p.threads_per_vm(vm) == 16
    assert p.tiles_used == tuple(range(64))


def test_vm_and_thread_of(areas):
    p = VMPlacement.area_aligned(areas, 4)
    for tile in range(64):
        vm = p.vm_of(tile)
        assert tile in p.tiles_of(vm)
        assert p.tiles_of(vm)[p.thread_of(tile)] == tile


def test_alternative_placement_straddles_areas(areas):
    """Fig. 6 right: each VM spans two areas."""
    p = VMPlacement.alternative(8, 8, 4)
    for vm in range(4):
        spanned = p.areas_spanned(vm, areas)
        assert len(spanned) == 2
        assert p.threads_per_vm(vm) == 16


def test_alternative_covers_chip_once():
    p = VMPlacement.alternative(8, 8, 4)
    assert p.tiles_used == tuple(range(64))


def test_fewer_vms_than_areas(areas):
    p = VMPlacement.area_aligned(areas, 2)
    assert p.n_vms == 2
    assert len(p.tiles_used) == 32


def test_too_many_vms_rejected(areas):
    with pytest.raises(ValueError):
        VMPlacement.area_aligned(areas, 5)


def test_overlapping_assignment_rejected():
    with pytest.raises(ValueError):
        VMPlacement({0: [0, 1], 1: [1, 2]})


def test_empty_vm_rejected():
    with pytest.raises(ValueError):
        VMPlacement({0: []})
    with pytest.raises(ValueError):
        VMPlacement({})


def test_alternative_height_must_divide():
    with pytest.raises(ValueError):
        VMPlacement.alternative(8, 8, 3)


def test_idle_tile_lookup_fails():
    p = VMPlacement({0: [0, 1]})
    with pytest.raises(KeyError):
        p.vm_of(5)


# ---------------------------------------------------------------------------
# dynamic consolidation: in-place mutators and non-contiguous regions


def test_non_contiguous_region_is_first_class():
    # a VM scattered across the chip (no area structure at all)
    p = VMPlacement({0: (0, 7, 9, 14), 1: (3, 5)})
    assert p.tiles_of(0) == (0, 7, 9, 14)
    assert p.vm_of(14) == 0 and p.thread_of(14) == 3
    assert p.tiles_used == (0, 3, 5, 7, 9, 14)
    areas = AreaMap(4, 4, 4)
    assert len(p.areas_spanned(0, areas)) > 1


def test_non_dense_vm_ids():
    p = VMPlacement({2: (0, 1), 7: (4, 5)})
    assert p.vms == (2, 7)
    assert p.n_vms == 2
    assert p.vm_of(4) == 7


def test_migrate_remaps_in_place():
    p = VMPlacement({0: (0, 1), 1: (2, 3)})
    p.migrate(1, (6, 9))  # non-contiguous target
    assert p.tiles_of(1) == (6, 9)
    assert p.vm_of(6) == 1 and p.thread_of(9) == 1
    with pytest.raises(KeyError):
        p.vm_of(2)  # vacated
    assert p.tiles_used == (0, 1, 6, 9)


def test_migrate_preserves_thread_count():
    p = VMPlacement({0: (0, 1)})
    with pytest.raises(ValueError, match="2 threads"):
        p.migrate(0, (4, 5, 6))


def test_migrate_rejects_occupied_target():
    p = VMPlacement({0: (0, 1), 1: (2, 3)})
    with pytest.raises(ValueError, match="occupied by VM 0"):
        p.migrate(1, (1, 4))
    # failed migrate leaves the placement untouched
    assert p.tiles_of(1) == (2, 3)
    assert p.vm_of(2) == 1


def test_migrate_onto_own_tiles_allowed():
    # partial overlap with the VM's own old region is legal (swap within)
    p = VMPlacement({0: (0, 1), 1: (2, 3)})
    p.migrate(1, (3, 6))
    assert p.tiles_of(1) == (3, 6)
    assert p.thread_of(3) == 0


def test_migrate_unknown_vm():
    p = VMPlacement({0: (0, 1)})
    with pytest.raises(KeyError):
        p.migrate(9, (4, 5))


def test_remove_returns_vacated_tiles():
    p = VMPlacement({0: (0, 1), 1: (2, 3)})
    assert p.remove(1) == (2, 3)
    assert p.vms == (0,)
    with pytest.raises(KeyError):
        p.vm_of(2)
    with pytest.raises(KeyError):
        p.remove(1)


def test_admit_places_new_vm_on_free_tiles():
    p = VMPlacement({0: (0, 1)})
    p.admit(5, (8, 2))
    assert p.vms == (0, 5)
    assert p.tiles_of(5) == (8, 2)
    assert p.thread_of(2) == 1
    with pytest.raises(ValueError, match="already placed"):
        p.admit(5, (10,))
    with pytest.raises(ValueError, match="occupied"):
        p.admit(6, (1,))
    with pytest.raises(ValueError, match="at least one tile"):
        p.admit(7, ())


def test_admit_rejects_duplicate_tiles():
    p = VMPlacement({0: (0, 1)})
    with pytest.raises(ValueError, match="duplicate tiles"):
        p.admit(1, (4, 4))


def test_migrate_remove_admit_cycle_keeps_maps_consistent():
    p = VMPlacement({0: (0, 1), 1: (2, 3), 2: (4, 5)})
    p.migrate(0, (6, 7))
    vacated = p.remove(1)
    p.admit(3, vacated)
    assert p.vms == (0, 2, 3)
    for vm in p.vms:
        for i, t in enumerate(p.tiles_of(vm)):
            assert p.vm_of(t) == vm
            assert p.thread_of(t) == i
    assert p.tiles_used == (2, 3, 4, 5, 6, 7)
