"""Unit tests for trace recording and replay."""

import itertools

import pytest

from repro.core.area import AreaMap
from repro.mem.address import AddressMap
from repro.workloads.generator import ConsolidatedWorkload, MemOp
from repro.workloads.placement import VMPlacement
from repro.workloads.tracefile import (
    TraceFileWorkload,
    load_trace,
    record_trace,
    write_trace_file,
)


@pytest.fixture
def workload():
    areas = AreaMap(4, 4, 4)
    placement = VMPlacement.area_aligned(areas, 4)
    return ConsolidatedWorkload("radix", placement, AddressMap(n_tiles=16), seed=5)


def test_round_trip_preserves_operations(workload, tmp_path):
    path = tmp_path / "radix.trace"
    replay = record_trace(workload, path, ops_per_tile=50)
    # the recording equals a fresh generation with the same seed
    fresh = ConsolidatedWorkload(
        "radix", workload.placement, workload.addr, seed=5
    )
    for tile in (0, 7, 15):
        recorded = list(itertools.islice(replay.trace(tile), 50))
        regenerated = list(itertools.islice(fresh.trace(tile), 50))
        assert recorded == regenerated


def test_replay_wraps_around(workload, tmp_path):
    path = tmp_path / "t.trace"
    replay = record_trace(workload, path, ops_per_tile=10)
    ops = list(itertools.islice(replay.trace(3), 25))
    assert ops[:10] == ops[10:20]
    assert replay.wraps[3] == 2


def test_file_format_is_parseable_text(workload, tmp_path):
    path = tmp_path / "t.trace"
    record_trace(workload, path, ops_per_tile=5)
    lines = path.read_text().splitlines()
    assert lines[0] == "#repro-trace v1"
    assert any(l.startswith("#tile ") for l in lines)
    body = [l for l in lines if not l.startswith("#")]
    assert len(body) == 5 * 16


def test_manual_write_and_load(tmp_path):
    path = tmp_path / "manual.trace"
    traces = {
        0: [MemOp(0x1000, False, 2), MemOp(0x2040, True, 1)],
        3: [MemOp(0x80, False, 4)],
    }
    write_trace_file(path, traces, name="hand")
    replay = load_trace(path)
    assert replay.name == "hand"
    assert replay.tiles == [0, 3]
    assert replay.ops_recorded(0) == 2
    first = next(replay.trace(0))
    assert first == MemOp(0x1000, False, 2)


def test_bad_magic_rejected(tmp_path):
    path = tmp_path / "bad.trace"
    path.write_text("not a trace\n")
    with pytest.raises(ValueError, match="not a repro trace"):
        load_trace(path)


def test_record_before_tile_rejected(tmp_path):
    path = tmp_path / "bad.trace"
    path.write_text("#repro-trace v1\n1000 R 1\n")
    with pytest.raises(ValueError, match="before #tile"):
        load_trace(path)


def test_malformed_record_rejected(tmp_path):
    path = tmp_path / "bad.trace"
    path.write_text("#repro-trace v1\n#tile 0\n1000 X\n")
    with pytest.raises(ValueError, match="bad record"):
        load_trace(path)


def test_empty_traces_rejected():
    with pytest.raises(ValueError):
        TraceFileWorkload("x", {})
    with pytest.raises(ValueError):
        TraceFileWorkload("x", {0: []})


def test_replay_drives_a_chip(workload, tmp_path):
    from repro.sim.chip import Chip
    from repro.sim.config import small_test_chip

    path = tmp_path / "radix.trace"
    replay = record_trace(workload, path, ops_per_tile=200)
    chip = Chip("dico", replay, config=small_test_chip(), seed=0)
    stats = chip.run_cycles(5_000)
    assert stats.operations > 0
    assert stats.workload == "radix"
    chip.verify_coherence()


def test_identical_replays_give_identical_runs(workload, tmp_path):
    from repro.sim.chip import Chip
    from repro.sim.config import small_test_chip

    path = tmp_path / "radix.trace"
    record_trace(workload, path, ops_per_tile=150)

    def run():
        chip = Chip("directory", load_trace(path), config=small_test_chip())
        return chip.run_cycles(4_000)

    a, b = run(), run()
    assert a.operations == b.operations
    assert a.network.flit_link_traversals == b.network.flit_link_traversals
