"""Run-manifest round trips and schema validation."""

import json

import pytest

from repro.trace import MANIFEST_SCHEMA_VERSION, RunManifest


def sample_manifest(**kwargs):
    fields = dict(
        protocol="dico-arin",
        workload="apache",
        seed=1,
        cycles=20_000,
        warmup=5_000,
        config_fingerprint="ab" * 32,
        git_rev="deadbee",
        stats_schema=4,
        wall_time_s=1.25,
        created_unix=1_700_000_000.0,
        fast_path=True,
        instruments=["tracer", "checker"],
        trace_path="trace.jsonl",
        spec={"protocol": "dico-arin", "workload": "apache"},
    )
    fields.update(kwargs)
    return RunManifest(**fields)


def test_dict_round_trip():
    m = sample_manifest()
    doc = m.to_dict()
    assert doc["schema"] == MANIFEST_SCHEMA_VERSION
    assert RunManifest.from_dict(doc) == m
    # survives JSON text too
    assert RunManifest.from_dict(json.loads(json.dumps(doc))) == m


def test_file_round_trip(tmp_path):
    m = sample_manifest(trace_path=None)
    path = m.write(tmp_path / "run.manifest.json")
    assert path.exists()
    assert RunManifest.load(path) == m


def test_unknown_schema_rejected():
    doc = sample_manifest().to_dict()
    doc["schema"] = MANIFEST_SCHEMA_VERSION + 1
    with pytest.raises(ValueError, match="schema"):
        RunManifest.from_dict(doc)


def test_watchdog_verdict_round_trips():
    m = sample_manifest(watchdog="ok", instruments=["watchdog"])
    doc = m.to_dict()
    assert doc["watchdog"] == "ok"
    assert RunManifest.from_dict(doc).watchdog == "ok"


def test_schema_1_documents_still_load():
    # pre-watchdog manifests have schema=1 and no watchdog key
    doc = sample_manifest().to_dict()
    doc["schema"] = 1
    del doc["watchdog"]
    m = RunManifest.from_dict(doc)
    assert m.schema == 1
    assert m.watchdog is None
