"""MetricsRegistry: labelled counters/histograms and RunStats mapping."""

import pytest

from repro.api import RunSpec, simulate
from repro.sweep.spec import config_to_dict
from repro.trace import MetricsRegistry
from tests.conftest import tiny_chip


def test_counter_and_histogram_basics():
    reg = MetricsRegistry()
    c = reg.counter("requests", protocol="dico")
    c.inc()
    c.inc(4)
    assert reg.counter("requests", protocol="dico") is c  # same label set
    assert reg.counter("requests", protocol="arin") is not c
    assert c.value == 5

    h = reg.histogram("latency")
    for v in (3, 9, 6):
        h.observe(v)
    assert (h.count, h.total, h.minimum, h.maximum) == (3, 18, 3, 9)
    assert h.mean == pytest.approx(6.0)


def test_snapshot_formats_labels_deterministically():
    reg = MetricsRegistry()
    reg.counter("hits", b="2", a="1").inc(7)
    snap = reg.snapshot()
    assert snap["counters"]["hits{a=1,b=2}"] == 7


def test_from_run_stats_reexpresses_aggregates():
    spec = RunSpec(
        protocol="dico-providers", workload="apache", seed=2,
        cycles=3_000, warmup=1_000, config=config_to_dict(tiny_chip()),
    )
    stats = simulate(spec).stats
    reg = MetricsRegistry.from_run_stats(stats)
    snap = reg.snapshot()
    counters = snap["counters"]
    assert counters["operations"] == stats.operations
    assert counters["l1_misses"] == stats.l1_misses
    assert counters["network_messages"] == stats.network.messages
    for msg_type, count in stats.network.by_type.items():
        assert counters[f"network_by_type{{msg_type={msg_type}}}"] == count
    for cat, count in stats.miss_categories.items():
        assert counters[f"miss_categories{{category={cat}}}"] == count
    # prediction section (stats schema 4) flows through as labelled counters
    for key, count in stats.prediction.items():
        assert counters[f"prediction{{counter={key}}}"] == count
    hist = snap["histograms"]["miss_latency"]
    assert hist["count"] == stats.miss_latency.count
    assert hist["total"] == stats.miss_latency.total
