"""The ``repro.api`` facade: single construction path + observability."""

import json

import pytest

from repro.api import RunSpec, TraceOptions, simulate, spec_fingerprint
from repro.core.checker import CoherenceViolation
from repro.stats.io import STATS_SCHEMA, stats_to_dict
from repro.sweep.spec import config_to_dict
from repro.trace import RunManifest
from tests.conftest import ALL_PROTOCOLS, tiny_chip

TINY = config_to_dict(tiny_chip())


def tiny_spec(protocol="dico-providers", **kwargs):
    defaults = dict(
        protocol=protocol, workload="mixed-sci", seed=7,
        cycles=3_000, warmup=1_000, config=TINY,
    )
    defaults.update(kwargs)
    return RunSpec(**defaults)


def test_tracing_off_is_bit_identical_to_plain_run():
    spec = tiny_spec()
    plain = simulate(spec)
    traced = simulate(spec, trace=TraceOptions(capacity=None))
    untraced_again = simulate(spec)
    assert stats_to_dict(plain.stats) == stats_to_dict(traced.stats)
    assert stats_to_dict(plain.stats) == stats_to_dict(untraced_again.stats)
    assert plain.events is None and plain.manifest is None
    assert traced.events and traced.manifest is not None


def test_execute_delegates_to_simulate():
    spec = tiny_spec()
    assert stats_to_dict(spec.execute()) == stats_to_dict(
        simulate(spec, checker=True).stats
    )


@pytest.mark.parametrize("protocol", sorted(ALL_PROTOCOLS))
def test_checker_passes_clean_runs_for_every_protocol(protocol):
    result = simulate(tiny_spec(protocol), checker=True)
    assert result.checked
    assert result.stats.operations > 0


def test_checker_surfaces_corrupted_state():
    import dataclasses

    from repro.core.protocols.base import L1State

    spec = tiny_spec("directory")
    chip = spec.build_chip()
    chip.run_cycles(2_000, warmup=500)
    # force an SWMR violation: two L1s both believe they own a block
    dirty = None
    for tile, l1 in enumerate(chip.protocol.l1s):
        for block, line in l1:
            if line.state == L1State.M:
                dirty = (tile, block, line)
                break
        if dirty:
            break
    assert dirty is not None, "expected at least one modified line"
    tile, block, line = dirty
    other = (tile + 1) % len(chip.protocol.l1s)
    chip.protocol.l1s[other].insert(block, dataclasses.replace(line))
    with pytest.raises(CoherenceViolation):
        chip.verify_coherence()


def test_trace_file_and_manifest_written(tmp_path):
    path = tmp_path / "run.jsonl"
    result = simulate(tiny_spec(), trace=TraceOptions(path=path))
    assert result.trace_path == path
    assert path.exists() and path.stat().st_size > 0
    assert result.manifest_path is not None
    manifest = RunManifest.load(result.manifest_path)
    assert manifest == result.manifest
    assert manifest.trace_path == str(path)
    assert manifest.stats_schema == STATS_SCHEMA
    assert manifest.config_fingerprint == spec_fingerprint(result.spec)
    assert "tracer" in manifest.instruments
    # every line is valid JSON with the fixed fields
    first = json.loads(path.read_text().splitlines()[0])
    assert {"cycle", "layer", "event"} <= set(first)


def test_manifest_without_tracing(tmp_path):
    path = tmp_path / "only.manifest.json"
    result = simulate(tiny_spec(), manifest_path=path)
    assert result.events is None
    assert result.manifest is not None
    # the livelock watchdog is on by default; nothing else attached
    assert result.manifest.instruments == ["watchdog"]
    assert result.manifest.watchdog == "ok"
    assert RunManifest.load(path) == result.manifest


def test_spec_fingerprint_tracks_content():
    a, b = tiny_spec(seed=1), tiny_spec(seed=2)
    assert spec_fingerprint(a) == spec_fingerprint(tiny_spec(seed=1))
    assert spec_fingerprint(a) != spec_fingerprint(b)


def test_metrics_accessor_matches_stats():
    result = simulate(tiny_spec())
    reg = result.metrics
    assert reg.counter("operations").value == result.stats.operations


def test_run_result_reports_wall_time():
    result = simulate(tiny_spec())
    assert result.wall_time_s > 0
