"""Unit and property tests for the trace sinks."""

import json

from hypothesis import given, settings, strategies as st

from repro.trace import (
    CountingSink,
    FilterSink,
    JsonlFileSink,
    ListSink,
    RingBufferSink,
    TraceEvent,
    TraceSink,
)


def ev(cycle=0, layer="noc", event="send", tile=None, addr=None, **attrs):
    return TraceEvent(
        cycle=cycle, layer=layer, event=event, tile=tile, addr=addr,
        attrs=attrs,
    )


def test_ring_buffer_keeps_newest_and_counts_drops():
    sink = RingBufferSink(capacity=3)
    for i in range(5):
        sink.emit(ev(cycle=i))
    assert sink.emitted == 5
    assert sink.dropped == 2
    assert [e.cycle for e in sink] == [2, 3, 4]
    assert len(sink) == 3
    sink.close()


def test_ring_buffer_unbounded_when_capacity_none():
    sink = RingBufferSink(capacity=None)
    for i in range(1000):
        sink.emit(ev(cycle=i))
    assert len(sink) == 1000
    assert sink.dropped == 0


def test_list_and_counting_sinks():
    lst, cnt = ListSink(), CountingSink()
    for i in range(4):
        lst.emit(ev(cycle=i))
        cnt.emit(ev(cycle=i))
    assert [e.cycle for e in lst.events] == [0, 1, 2, 3]
    assert cnt.count == 4


def test_sinks_satisfy_protocol():
    for sink in (RingBufferSink(), ListSink(), CountingSink(),
                 FilterSink(ListSink())):
        assert isinstance(sink, TraceSink)


def test_jsonl_file_sink_round_trips_events(tmp_path):
    path = tmp_path / "trace.jsonl"
    events = [
        ev(cycle=3, tile=1, addr=0x2F, msg_type="GetX", flits=5, hops=2),
        ev(cycle=9, layer="protocol", event="transition", tile=0, addr=7,
           **{"from": "S", "to": "M", "cause": "write_commit"}),
    ]
    with JsonlFileSink(path) as sink:
        for e in events:
            sink.emit(e)
    lines = [json.loads(x) for x in path.read_text().splitlines()]
    assert [TraceEvent.from_dict(d) for d in lines] == events
    # fixed fields lead every record, in schema order
    assert list(lines[0])[:5] == ["cycle", "layer", "event", "tile", "addr"]


def test_filter_sink_dimensions():
    inner = ListSink()
    sink = FilterSink(inner, addrs=[7], events=["send", "transition"])
    sink.emit(ev(event="send", addr=7))          # passes
    sink.emit(ev(event="send", addr=8))          # wrong addr
    sink.emit(ev(event="deliver", addr=7))       # wrong event
    sink.emit(ev(event="transition", addr=None))  # addr filter active: None fails
    assert sink.seen == 4 and sink.forwarded == 1
    assert len(inner.events) == 1 and inner.events[0].addr == 7


def test_filter_sink_disabled_dimension_passes_none_fields():
    inner = ListSink()
    sink = FilterSink(inner, events=["marker"])
    sink.emit(ev(layer="run", event="marker", name="reset_stats"))
    assert [e.event for e in inner.events] == ["marker"]


_layers = st.sampled_from(["protocol", "noc", "cache", "run"])
_events = st.sampled_from(["send", "deliver", "transition", "fill", "evict"])
_opt_int = st.one_of(st.none(), st.integers(0, 15))
_event_strategy = st.builds(
    lambda c, la, e, t, a: ev(cycle=c, layer=la, event=e, tile=t, addr=a),
    st.integers(0, 100), _layers, _events, _opt_int, _opt_int,
)
_opt_filter = st.one_of(st.none(), st.lists(st.integers(0, 15), max_size=4))
_opt_events = st.one_of(
    st.none(), st.lists(_events, max_size=3), st.lists(_layers, max_size=3)
)


@given(
    events=st.lists(_event_strategy, max_size=60),
    addrs=_opt_filter,
    tiles=_opt_filter,
    names=st.one_of(st.none(), st.lists(_events, max_size=3)),
    layers=st.one_of(st.none(), st.lists(_layers, max_size=3)),
)
@settings(max_examples=200, deadline=None)
def test_filtered_stream_is_subsequence_of_unfiltered(
    events, addrs, tiles, names, layers
):
    unfiltered = ListSink()
    inner = ListSink()
    filtered = FilterSink(
        inner, addrs=addrs, tiles=tiles, events=names, layers=layers
    )
    for e in events:
        unfiltered.emit(e)
        filtered.emit(e)
    # every forwarded event matches every active dimension...
    for e in inner.events:
        if addrs is not None:
            assert e.addr in set(addrs)
        if tiles is not None:
            assert e.tile in set(tiles)
        if names is not None:
            assert e.event in set(names)
        if layers is not None:
            assert e.layer in set(layers)
    # ...and the filtered stream is an ordered subsequence of the full one
    it = iter(unfiltered.events)
    for e in inner.events:
        assert e in it  # advances `it`: preserves relative order
    assert filtered.seen == len(events)
    assert filtered.forwarded == len(inner.events)
