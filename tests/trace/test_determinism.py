"""Trace determinism: identical event streams across engine paths and
process boundaries, and unchanged statistics when tracing is on."""

import json

import pytest

from repro.api import RunSpec, TraceOptions, simulate, spec_fingerprint
from repro.stats.io import stats_to_dict
from repro.sweep import SweepRunner
from repro.sweep.spec import config_to_dict
from tests.conftest import tiny_chip

TINY = config_to_dict(tiny_chip())


def tiny_spec(protocol="dico-providers", **kwargs):
    defaults = dict(
        protocol=protocol, workload="mixed-sci", seed=7,
        cycles=3_000, warmup=1_000, config=TINY,
    )
    defaults.update(kwargs)
    return RunSpec(**defaults)


@pytest.mark.parametrize("protocol", ("directory", "dico-arin"))
def test_trace_identical_across_fast_and_reference_paths(
    protocol, monkeypatch
):
    spec = tiny_spec(protocol)
    monkeypatch.setenv("REPRO_FAST_PATH", "0")
    reference = simulate(spec, trace=TraceOptions(capacity=None))
    monkeypatch.setenv("REPRO_FAST_PATH", "1")
    fast = simulate(spec, trace=TraceOptions(capacity=None))
    assert stats_to_dict(fast.stats) == stats_to_dict(reference.stats)
    assert fast.events == reference.events


def test_trace_files_identical_serial_vs_pooled(tmp_path, monkeypatch):
    # same specs, one traced serially and one through pool workers —
    # the JSONL payloads must agree byte for byte
    specs = [tiny_spec(p) for p in ("dico", "dico-providers")]
    serial_dir, pooled_dir = tmp_path / "serial", tmp_path / "pooled"
    SweepRunner(jobs=1, trace_dir=str(serial_dir)).run(specs)
    SweepRunner(jobs=2, trace_dir=str(pooled_dir)).run(specs)
    for spec in specs:
        name = f"{spec_fingerprint(spec)[:16]}.jsonl"
        serial_trace = (serial_dir / name).read_bytes()
        pooled_trace = (pooled_dir / name).read_bytes()
        assert serial_trace == pooled_trace
        assert serial_trace  # non-empty
        # manifests agree on everything deterministic
        a = json.loads((serial_dir / f"{name}.manifest.json").read_text())
        b = json.loads((pooled_dir / f"{name}.manifest.json").read_text())
        for volatile in ("wall_time_s", "created_unix", "trace_path"):
            a.pop(volatile), b.pop(volatile)
        assert a == b


def test_sweep_tracing_does_not_change_stats(tmp_path):
    spec = tiny_spec("directory")
    plain = SweepRunner(jobs=1).run([spec])[0]
    traced = SweepRunner(jobs=1, trace_dir=str(tmp_path)).run([spec])[0]
    assert stats_to_dict(plain.stats) == stats_to_dict(traced.stats)


def test_cache_hits_skip_tracing(tmp_path):
    spec = tiny_spec("dico")
    cache_dir, trace_dir = tmp_path / "cache", tmp_path / "traces"
    SweepRunner(jobs=1, cache_dir=str(cache_dir)).run([spec])
    warm = SweepRunner(
        jobs=1, cache_dir=str(cache_dir), trace_dir=str(trace_dir)
    )
    result = warm.run([spec])[0]
    assert result.cached and warm.executed == 0
    # documented behavior: a cache hit never simulates, so no trace file
    assert not trace_dir.exists() or not list(trace_dir.iterdir())
