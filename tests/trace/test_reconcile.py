"""Trace/aggregate reconciliation: per-event accounting must sum
exactly to the end-of-run network counters, for every protocol."""

import pytest

from repro.analysis.tracetools import (
    ReconciliationError,
    TrafficAccumulator,
    hop_attribution,
    lifecycle,
    measurement_window,
    read_trace,
    reconcile,
)
from repro.api import RunSpec, TraceOptions, simulate
from repro.sweep.spec import config_to_dict
from repro.trace import TraceEvent
from tests.conftest import ALL_PROTOCOLS, tiny_chip

TINY = config_to_dict(tiny_chip())


def traced_run(protocol, **kwargs):
    defaults = dict(
        protocol=protocol, workload="apache", seed=3,
        cycles=4_000, warmup=1_000, config=TINY,
    )
    defaults.update(kwargs)
    return simulate(
        RunSpec(**defaults), trace=TraceOptions(capacity=None)
    )


@pytest.mark.parametrize("protocol", sorted(ALL_PROTOCOLS))
def test_trace_reconciles_with_aggregates(protocol):
    result = traced_run(protocol)
    totals = reconcile(measurement_window(result.events), result.stats)
    assert totals["messages"] == result.stats.network.messages
    assert totals["messages"] > 0


@pytest.mark.parametrize("protocol", sorted(ALL_PROTOCOLS))
def test_streaming_accumulator_matches_event_replay(protocol):
    defaults = dict(
        protocol=protocol, workload="apache", seed=3,
        cycles=4_000, warmup=1_000, config=TINY,
    )
    acc = TrafficAccumulator()
    result = simulate(RunSpec(**defaults), trace=TraceOptions(sink=acc))
    # the sink saw the reset_stats marker, so it already holds exactly
    # the measurement window
    totals = reconcile(acc, result.stats)
    assert totals["messages"] == result.stats.network.messages


def test_hop_attribution_sums_to_aggregates():
    result = traced_run("dico-providers")
    window = measurement_window(result.events)
    attr = hop_attribution(window)
    net = result.stats.network
    assert sum(b["hops"] for b in attr.values()) == net.router_traversals
    assert sum(b["flit_links"] for b in attr.values()) == (
        net.flit_link_traversals
    )
    assert sum(b["messages"] for b in attr.values()) == net.messages
    merged = {}
    for b in attr.values():
        for msg_type, flits in b["flits_by_type"].items():
            merged[msg_type] = merged.get(msg_type, 0) + flits
    assert merged == {k: v for k, v in net.flits_by_type.items() if v}
    # coherence traffic is fully attributable on this simulator: every
    # message happens on behalf of some block
    assert None not in attr


def test_lifecycle_reconstruction():
    result = traced_run("dico")
    window = measurement_window(result.events)
    busiest = max(
        hop_attribution(window).items(), key=lambda kv: kv[1]["messages"]
    )[0]
    story = lifecycle(window, busiest)
    assert story, "busiest block must have events"
    assert all(e.addr == busiest for e in story)
    cycles = [e.cycle for e in story]
    assert cycles == sorted(cycles)
    layers = {e.layer for e in story}
    assert "noc" in layers


def test_reconcile_round_trips_through_jsonl(tmp_path):
    path = tmp_path / "t.jsonl"
    defaults = dict(
        protocol="dico-arin", workload="radix", seed=5,
        cycles=3_000, warmup=800, config=TINY,
    )
    result = simulate(RunSpec(**defaults), trace=TraceOptions(path=path))
    events = measurement_window(read_trace(path))
    reconcile(events, result.stats)


def test_reconcile_raises_on_mismatch():
    result = traced_run("directory")
    window = measurement_window(result.events)
    result.stats.network.messages += 1
    with pytest.raises(ReconciliationError, match="messages"):
        reconcile(window, result.stats)


def test_broadcast_accounting_matches_network_rules():
    # synthetic broadcast: flits=2 over 15 tree links
    acc = TrafficAccumulator(per_addr=True)
    acc.emit(TraceEvent(
        cycle=10, layer="noc", event="broadcast", tile=0, addr=42,
        attrs={"src": 0, "msg_type": "Arin_Inv", "flits": 2, "links": 15,
               "depth": 6, "latency": 13},
    ))
    assert acc.messages == 1 and acc.broadcasts == 1
    assert acc.flits_by_type == {"Arin_Inv": 2 * 15}
    assert acc.flit_link_traversals == 2 * 15
    assert acc.router_traversals == 15
    assert acc.routing_events == 15
    assert acc.per_addr[42]["flits"] == 30


def test_marker_resets_accumulator():
    acc = TrafficAccumulator()
    acc.emit(TraceEvent(
        cycle=1, layer="noc", event="send", tile=0, addr=1,
        attrs={"src": 0, "dst": 3, "msg_type": "GetS", "flits": 1,
               "hops": 2, "latency": 10},
    ))
    assert acc.messages == 1
    acc.emit(TraceEvent(
        cycle=2, layer="run", event="marker", tile=None, addr=None,
        attrs={"name": "reset_stats"},
    ))
    assert acc.messages == 0 and acc.totals()["router_traversals"] == 0


def test_arin_broadcast_reconciles_end_to_end():
    """Drive DiCo-Arin's three-phase write broadcast (Sec. IV-B1) with
    a tracer attached: broadcast events must reconcile too."""
    from repro.core.protocols.arin import DiCoArinProtocol
    from repro.trace import Tracer
    from tests.conftest import addr_homed_at

    proto = DiCoArinProtocol(tiny_chip(), seed=0)
    acc = TrafficAccumulator()
    tracer = Tracer(acc, clock=lambda: 0)
    proto._trace = tracer
    proto.network._trace = tracer
    addr = addr_homed_at(proto.config, 5)
    proto.access(0, addr, False, 0)
    proto.access(10, addr, False, 1250)   # dissolve to inter-area
    proto.access(12, addr, False, 2000)
    proto.access(3, addr, True, 5000)     # three-phase broadcast write
    assert proto.network.stats.broadcasts >= 2
    assert acc.broadcasts == proto.network.stats.broadcasts
    reconcile(acc, _stats_view(proto))


def _stats_view(proto):
    """Minimal RunStats-shaped object over a protocol's live counters."""
    class _View:
        network = proto.network.stats
    return _View()


PLAN = {
    "seed": 2,
    "events": [
        {"cycle": 1_000, "kind": "vm_depart", "vm": 3},
        {"cycle": 2_000, "kind": "vm_migrate", "vm": 0,
         "tiles": [10, 11, 14, 15]},
        {"cycle": 2_800, "kind": "dedup_break", "vm": 1, "pages": 2},
        {"cycle": 3_400, "kind": "dedup_merge", "vm": 1, "pages": 2},
    ],
}


@pytest.mark.parametrize("protocol", ["directory", "dico-arin"])
def test_consolidation_events_reconcile(protocol):
    """A dynamic run's trace carries one ``consolidation`` event per
    fired plan event, and reconcile checks them against the schema-6
    per-kind counters (effect counters are aggregate-only)."""
    acc = TrafficAccumulator()
    result = simulate(
        RunSpec(
            protocol=protocol, workload="apache", seed=3,
            cycles=4_000, warmup=1_000, config=TINY, plan=PLAN,
        ),
        trace=TraceOptions(sink=acc),
    )
    assert acc.consolidation == {
        "vm_depart": 1, "vm_migrate": 1, "dedup_break": 1, "dedup_merge": 1,
    }
    totals = reconcile(acc, result.stats)
    assert totals["messages"] == result.stats.network.messages


def test_consolidation_mismatch_raises():
    acc = TrafficAccumulator()
    result = simulate(
        RunSpec(
            protocol="dico", workload="apache", seed=3,
            cycles=4_000, warmup=1_000, config=TINY, plan=PLAN,
        ),
        trace=TraceOptions(sink=acc),
    )
    result.stats.consolidation["vm_migrate"] += 1
    with pytest.raises(ReconciliationError, match="consolidation"):
        reconcile(acc, result.stats)
