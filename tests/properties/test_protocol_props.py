"""Property-based coherence testing.

Random interleavings of reads and writes from random tiles to a small
pool of blocks, run against every protocol.  After every access the
global invariants must hold: single writer, value propagation (every
readable copy carries the latest committed version), and the reads
observed by cores are never stale — all enforced by the
:class:`~repro.core.checker.CoherenceChecker` wired into the protocol.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.chip import PROTOCOLS, make_protocol
from repro.sim.config import small_test_chip

from ..conftest import tiny_chip

#: (tile, block_index, is_write) triples
op_strategy = st.lists(
    st.tuples(
        st.integers(0, 15),
        st.integers(0, 11),
        st.booleans(),
    ),
    min_size=1,
    max_size=120,
)


def run_ops(protocol_name: str, ops) -> None:
    cfg = tiny_chip()
    proto = make_protocol(protocol_name, cfg, seed=0)
    # blocks spread over several homes including self-homed cases
    blocks = [h + n * cfg.n_tiles for h in (0, 5, 10) for n in range(4)]
    now = 0
    for tile, block_idx, is_write in ops:
        block = blocks[block_idx]
        result = proto.access(tile, block << 6, is_write, now)
        if result.needs_retry:
            now = result.retry_at
            result = proto.access(tile, block << 6, is_write, now)
        now += max(1, result.latency if not result.needs_retry else 1)
        proto.check_block(block)
    for block in blocks:
        proto.check_block(block)


@pytest.mark.parametrize("protocol", sorted(PROTOCOLS))
@given(ops=op_strategy)
@settings(max_examples=40, deadline=None)
def test_random_traces_preserve_coherence(protocol, ops):
    run_ops(protocol, ops)


@pytest.mark.parametrize("protocol", sorted(PROTOCOLS))
@given(
    ops=st.lists(
        st.tuples(st.integers(0, 15), st.booleans()),
        min_size=1,
        max_size=80,
    )
)
@settings(max_examples=25, deadline=None)
def test_single_block_contention(protocol, ops):
    """All tiles hammer one block: the hardest serialization case."""
    cfg = tiny_chip()
    proto = make_protocol(protocol, cfg, seed=0)
    block = 5  # homed at tile 5
    now = 0
    for tile, is_write in ops:
        r = proto.access(tile, block << 6, is_write, now)
        while r.needs_retry:
            now = r.retry_at
            r = proto.access(tile, block << 6, is_write, now)
        now += max(1, r.latency)
        proto.check_block(block)


@pytest.mark.parametrize("protocol", sorted(PROTOCOLS))
@given(seed=st.integers(0, 2**16))
@settings(max_examples=10, deadline=None)
def test_chip_runs_with_random_seeds(protocol, seed):
    from repro.sim.chip import Chip

    chip = Chip(protocol, "radix", config=small_test_chip(), seed=seed)
    chip.run_cycles(3_000)
    chip.verify_coherence()
