"""Property tests for dynamic-consolidation plans.

Two contracts: (1) *any* zero-event plan — whatever its seed — leaves
run statistics bit-identical to a plan-less run on both engines;
(2) every plan the seeded generator can produce validates and keeps
the chip coherent end-to-end."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.chip import PROTOCOLS, Chip
from repro.stats.io import stats_to_dict
from repro.workloads.dynamics import ConsolidationPlan
from tests.conftest import tiny_chip

TILES_BY_VM = {
    0: (0, 1, 4, 5),
    1: (2, 3, 6, 7),
    2: (8, 9, 12, 13),
}


@settings(max_examples=8, deadline=None)
@given(
    plan_seed=st.integers(min_value=0, max_value=2**31),
    run_seed=st.integers(min_value=0, max_value=7),
    protocol=st.sampled_from(sorted(PROTOCOLS)),
)
def test_zero_event_plan_is_bit_identical_on_both_engines(
    plan_seed, run_seed, protocol
):
    from repro.simx.engine import ArrayChip

    plan = ConsolidationPlan(seed=plan_seed)
    spec = dict(config=tiny_chip(), n_vms=3, seed=run_seed)
    reference = Chip(protocol, "mixed-com", **spec).run_cycles(
        2_000, warmup=500
    )
    with_plan = Chip(protocol, "mixed-com", plan=plan, **spec).run_cycles(
        2_000, warmup=500
    )
    on_array = ArrayChip(
        protocol, "mixed-com", plan=ConsolidationPlan(seed=plan_seed),
        **spec,
    ).run_cycles(2_000, warmup=500)
    assert stats_to_dict(with_plan) == stats_to_dict(reference)
    assert stats_to_dict(on_array) == stats_to_dict(reference)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    n_events=st.integers(min_value=1, max_value=8),
)
def test_generated_plans_validate_against_their_window(seed, n_events):
    plan = ConsolidationPlan.generate(
        seed, 3_000, TILES_BY_VM, 16, n_events=n_events
    )
    # validate() raising would fail the test; also pin canonical order
    plan.validate(3_000, TILES_BY_VM, 16)
    cycles = [ev.cycle for ev in plan.events]
    assert cycles == sorted(cycles)
    doc = plan.to_dict()
    assert ConsolidationPlan.from_dict(doc) == plan


@settings(max_examples=6, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=1_000),
    protocol=st.sampled_from(sorted(PROTOCOLS)),
)
def test_generated_plans_keep_the_chip_coherent(seed, protocol):
    plan = ConsolidationPlan.generate(
        seed, 2_000, TILES_BY_VM, 16, n_events=5
    )
    chip = Chip(
        protocol, "mixed-com", config=tiny_chip(), n_vms=3, seed=seed % 16,
        plan=plan,
    )
    stats = chip.run_cycles(2_000, warmup=500)
    chip.verify_coherence()
    fired = sum(
        stats.consolidation.get(k, 0)
        for k in ("vm_migrate", "vm_depart", "vm_arrive", "dedup_break",
                  "dedup_merge")
    )
    assert fired == len(plan)
