"""Property-based tests: the cache array against a reference model."""

from hypothesis import given, settings, strategies as st

from repro.cache.cache import SetAssocCache

BLOCKS = st.integers(min_value=0, max_value=255)

ops = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), BLOCKS, st.integers()),
        st.tuples(st.just("lookup"), BLOCKS, st.none()),
        st.tuples(st.just("invalidate"), BLOCKS, st.none()),
    ),
    max_size=200,
)


@given(ops=ops, n_sets=st.sampled_from([1, 2, 4]), n_ways=st.sampled_from([1, 2, 4]))
@settings(max_examples=100, deadline=None)
def test_cache_agrees_with_reference_dict(ops, n_sets, n_ways):
    """Whatever the cache holds must match a per-set bounded dict model:
    same keys present, same values, sets never overfull."""
    cache: SetAssocCache[int] = SetAssocCache(n_sets, n_ways)
    model = {}  # block -> value for blocks we *know* should be present

    for op, block, value in ops:
        if op == "insert":
            victim = cache.insert(block, value)
            model[block] = value
            if victim is not None:
                vb, _ = victim
                assert vb != block
                assert cache.set_of(vb) == cache.set_of(block)
                model.pop(vb, None)
        elif op == "lookup":
            got = cache.lookup(block)
            if block in model:
                assert got == model[block]
            else:
                assert got is None
        else:
            got = cache.invalidate(block)
            if block in model:
                assert got == model[block]
                del model[block]
            else:
                assert got is None

    # final state agrees exactly
    assert dict(iter(cache)) == model
    # no set exceeds its associativity
    for s in range(n_sets):
        assert len(cache.blocks_in_set(s)) <= n_ways


@given(
    blocks=st.lists(BLOCKS, min_size=1, max_size=100),
    n_ways=st.sampled_from([1, 2, 4, 8]),
)
@settings(max_examples=60, deadline=None)
def test_most_recent_insertions_survive(blocks, n_ways):
    """The last n_ways distinct blocks of one set are always present."""
    cache: SetAssocCache[int] = SetAssocCache(1, n_ways)
    for b in blocks:
        cache.insert(b, b)
    recent = []
    for b in reversed(blocks):
        if b not in recent:
            recent.append(b)
        if len(recent) == n_ways:
            break
    for b in recent:
        assert b in cache


@given(low_bits=st.integers(0, 63), n=st.integers(5, 64))
@settings(max_examples=50, deadline=None)
def test_index_shift_spreads_bank_aligned_blocks(low_bits, n):
    """Blocks homed at one bank share their low 6 bits.  Without the
    shift they collapse into one set; with it they spread out."""
    plain = SetAssocCache(64, 4)
    shifted = SetAssocCache(64, 4, index_shift=6)
    blocks = [(i << 6) | low_bits for i in range(n)]
    for b in blocks:
        plain.insert(b, b)
        shifted.insert(b, b)
    # the shifted cache keeps every block (unique sets)
    assert all(b in shifted for b in blocks)
    # the plain cache collapsed them into one 4-way set
    assert sum(b in plain for b in blocks) == min(n, 4)
