"""Property-based tests on the storage model (Tables V/VII invariants)."""

from hypothesis import given, settings, strategies as st

from repro.core.storage import PROTOCOL_NAMES, storage_breakdown
from repro.sim.config import ChipConfig


def chips():
    """Random valid chip geometries."""
    return st.builds(
        lambda logw, logh, loga: ChipConfig(
            mesh_width=1 << logw,
            mesh_height=1 << logh,
            n_areas=min(1 << loga, (1 << logw) * (1 << logh)),
        ),
        logw=st.integers(1, 5),
        logh=st.integers(1, 5),
        loga=st.integers(0, 6),
    )


@given(cfg=chips())
@settings(max_examples=80, deadline=None)
def test_area_protocols_never_exceed_dico(cfg):
    """The whole point of the proposal: both area protocols need at
    most DiCo's coherence storage, for any geometry."""
    dico = storage_breakdown("dico", cfg).coherence_kb
    for proto in ("dico-providers", "dico-arin"):
        assert storage_breakdown(proto, cfg).coherence_kb <= dico + 1e-9


@given(cfg=chips())
@settings(max_examples=80, deadline=None)
def test_dico_slightly_exceeds_directory(cfg):
    """Sec. V-B: original DiCo needs *more* coherence storage than the
    flat directory (it duplicates the full map into the L1s)."""
    directory = storage_breakdown("directory", cfg).coherence_kb
    dico = storage_breakdown("dico", cfg).coherence_kb
    assert dico >= directory


@given(cfg=chips())
@settings(max_examples=80, deadline=None)
def test_breakdowns_are_internally_consistent(cfg):
    for proto in PROTOCOL_NAMES:
        b = storage_breakdown(proto, cfg)
        assert b.protocol == proto
        assert b.coherence_kb >= 0
        assert b.data_kb > 0
        assert abs(b.overhead - b.coherence_kb / b.data_kb) < 1e-12
        for s in (*b.data, *b.coherence):
            assert s.entry_bits >= 0 and s.entries > 0
            assert s.total_bits == s.entry_bits * s.entries


@given(logn=st.integers(3, 6))
@settings(max_examples=10, deadline=None)
def test_directory_overhead_grows_linearly_with_cores(logn):
    """Full-map entries are ntc bits: doubling the cores roughly
    doubles the directory overhead percentage."""
    w = 1 << (logn // 2 + logn % 2)
    h = (1 << logn) // w
    small = ChipConfig(mesh_width=w, mesh_height=h, n_areas=2)
    big_w = w * 2
    big = ChipConfig(mesh_width=big_w, mesh_height=h, n_areas=2)
    o_small = storage_breakdown("directory", small).overhead
    o_big = storage_breakdown("directory", big).overhead
    assert 1.5 < o_big / o_small < 2.5
