"""Property-based tests on the deduplication page table."""

from hypothesis import given, settings, strategies as st

from repro.mem.dedup import DedupPageTable


@given(
    n_vms=st.integers(2, 6),
    n_private=st.integers(0, 10),
    n_dedup=st.integers(0, 10),
    writes=st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 19)), max_size=60
    ),
)
@settings(max_examples=100, deadline=None)
def test_translation_is_always_consistent(n_vms, n_private, n_dedup, writes):
    """After any CoW sequence: every mapping resolves, frames are never
    shared between different *contents*, and the saved-page count is
    exactly (sharers-1) summed over the dedup frames."""
    t = DedupPageTable()
    for vm in range(n_vms):
        for vp in range(n_private):
            t.map_private(vm, vp)
    for j in range(n_dedup):
        t.map_deduplicated({vm: n_private + j for vm in range(n_vms)})

    total_pages = n_private + n_dedup
    for vm, vp in writes:
        if total_pages == 0:
            break
        vm = vm % n_vms
        vp = vp % total_pages
        t.translate_write(vm, vp)

    # every page still translates, deterministically
    frames = {}
    for vm in range(n_vms):
        for vp in range(n_private + n_dedup):
            p1 = t.translate(vm, vp)
            p2 = t.translate(vm, vp)
            assert p1 == p2
            frames.setdefault(p1, set()).add((vm, vp))

    # a frame shared by several mappings must be a dedup frame with the
    # exact user set the table reports
    expected_saved = 0
    for ppage, users in frames.items():
        if len(users) > 1:
            assert t.is_deduplicated_ppage(ppage)
            assert {vm for vm, _ in users} == t.dedup_vms(ppage)
            expected_saved += len(users) - 1
    assert t.pages_saved == expected_saved
    # private pages are never flagged dedup
    for ppage, users in frames.items():
        if len(users) == 1:
            assert not t.is_deduplicated_ppage(ppage)


@given(writes=st.lists(st.integers(0, 3), min_size=1, max_size=20))
@settings(max_examples=50, deadline=None)
def test_repeated_cow_allocates_at_most_once_per_vm(writes):
    t = DedupPageTable()
    t.map_deduplicated({vm: 0 for vm in range(4)})
    for vm in writes:
        t.translate_write(vm, 0)
    # each VM triggers at most one CoW for the page
    vms = {e.vm for e in t.cow_events}
    assert len(t.cow_events) == len(vms)
