"""Property-based tests: replacement-policy internal-state invariants.

The FIFO queue and LRU stack must remain a permutation of
``range(n_ways)`` under *any* interleaving of touch/reset/victim —
mixed invalidate/refill sequences must never leave a way listed twice
(a duplicate would make a later ``list.remove`` silently strip the
wrong occurrence) or missing (``list.remove`` would raise).  The same
sequences are also replayed through :class:`SetAssocCache` so the
policy calls come in the exact order real insert/invalidate traffic
produces them.
"""

from hypothesis import given, settings, strategies as st

from repro.cache.cache import SetAssocCache
from repro.cache.replacement import FIFO, LRU, RandomRepl, TreePLRU, make_policy

N_WAYS = st.sampled_from([1, 2, 4, 8])


def policy_ops(n_ways_max: int = 8):
    way = st.integers(min_value=0, max_value=n_ways_max - 1)
    return st.lists(
        st.one_of(
            st.tuples(st.just("touch"), way),
            st.tuples(st.just("reset"), way),
            st.tuples(st.just("victim"), way),
        ),
        max_size=300,
    )


def check_permutation(policy, n_ways):
    if isinstance(policy, LRU):
        assert sorted(policy._stack) == list(range(n_ways))
    elif isinstance(policy, FIFO):
        assert sorted(policy._queue) == list(range(n_ways))


@given(name=st.sampled_from(["lru", "fifo"]), n_ways=N_WAYS, ops=policy_ops())
@settings(max_examples=200, deadline=None)
def test_queue_stays_permutation_under_mixed_sequences(name, n_ways, ops):
    policy = make_policy(name, n_ways)
    for op, way in ops:
        way %= n_ways
        if op == "touch":
            policy.touch(way)
        elif op == "reset":
            policy.reset(way)
        else:
            assert 0 <= policy.victim() < n_ways
        check_permutation(policy, n_ways)


@given(n_ways=N_WAYS, ops=policy_ops())
@settings(max_examples=100, deadline=None)
def test_plru_and_random_victims_stay_in_range(n_ways, ops):
    for policy in (TreePLRU(n_ways), RandomRepl(n_ways, seed=5)):
        for op, way in ops:
            way %= n_ways
            if op == "touch":
                policy.touch(way)
            elif op == "reset":
                policy.reset(way)
            else:
                assert 0 <= policy.victim() < n_ways


CACHE_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.integers(min_value=0, max_value=63)),
        st.tuples(st.just("invalidate"), st.integers(min_value=0, max_value=63)),
        st.tuples(st.just("lookup"), st.integers(min_value=0, max_value=63)),
    ),
    max_size=300,
)


@given(
    policy=st.sampled_from(["lru", "fifo", "plru", "random"]),
    n_ways=st.sampled_from([1, 2, 4]),
    ops=CACHE_OPS,
)
@settings(max_examples=150, deadline=None)
def test_cache_mediated_invalidate_refill_sequences(policy, n_ways, ops):
    """Drive the policies through the cache array itself, so resets come
    from invalidations and touches from hits/refills, and check the
    permutation invariant plus set consistency after every operation."""
    cache: SetAssocCache[int] = SetAssocCache(4, n_ways, policy=policy)
    for op, block in ops:
        if op == "insert":
            cache.insert(block, block * 7)
        elif op == "invalidate":
            cache.invalidate(block)
        else:
            cache.lookup(block)
        for p in cache._policies:
            check_permutation(p, n_ways)
        for s in range(cache.n_sets):
            assert len(cache.blocks_in_set(s)) <= n_ways


def test_random_policy_decorrelated_across_sets():
    """Every set used to replay the identical seed-0 stream; per-set
    seeds must give different victim sequences (and stay deterministic
    run to run)."""
    def victim_streams():
        cache: SetAssocCache[int] = SetAssocCache(8, 4, policy="random")
        return [
            tuple(p.victim() for _ in range(16)) for p in cache._policies
        ]

    streams = victim_streams()
    assert len(set(streams)) > 1, "all sets replayed one victim stream"
    assert streams == victim_streams(), "per-set seeding must be stable"


def test_random_policy_decorrelated_across_structures():
    a = SetAssocCache(4, 4, policy="random", name="l1[0]")
    b = SetAssocCache(4, 4, policy="random", name="l1[1]")
    sa = [tuple(p.victim() for _ in range(16)) for p in a._policies]
    sb = [tuple(p.victim() for _ in range(16)) for p in b._policies]
    assert sa != sb


def test_make_policy_seed_reaches_random():
    x = make_policy("random", 8, seed=1)
    y = make_policy("random", 8, seed=1)
    z = make_policy("random", 8, seed=2)
    sx = [x.victim() for _ in range(32)]
    sy = [y.victim() for _ in range(32)]
    sz = [z.victim() for _ in range(32)]
    assert sx == sy
    assert sx != sz
