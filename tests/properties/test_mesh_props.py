"""Property-based tests on mesh routing and broadcast trees."""

from hypothesis import given, settings, strategies as st

from repro.noc.topology import Mesh

dims = st.tuples(st.integers(1, 8), st.integers(1, 8))


@given(dims=dims, data=st.data())
@settings(max_examples=100, deadline=None)
def test_route_length_equals_manhattan_distance(dims, data):
    w, h = dims
    mesh = Mesh(w, h)
    src = data.draw(st.integers(0, mesh.n_tiles - 1))
    dst = data.draw(st.integers(0, mesh.n_tiles - 1))
    route = mesh.route(src, dst)
    assert len(route) == mesh.hops(src, dst)
    # the route is a connected chain of neighbour links
    cur = src
    for a, b in route:
        assert a == cur
        assert b in set(mesh.neighbors(a))
        cur = b
    if route:
        assert cur == dst


@given(dims=dims, data=st.data())
@settings(max_examples=60, deadline=None)
def test_hops_is_a_metric(dims, data):
    w, h = dims
    mesh = Mesh(w, h)
    t = st.integers(0, mesh.n_tiles - 1)
    a, b, c = data.draw(t), data.draw(t), data.draw(t)
    assert mesh.hops(a, a) == 0
    assert mesh.hops(a, b) == mesh.hops(b, a)
    assert mesh.hops(a, c) <= mesh.hops(a, b) + mesh.hops(b, c)


@given(dims=dims, data=st.data())
@settings(max_examples=60, deadline=None)
def test_broadcast_tree_is_a_spanning_tree(dims, data):
    w, h = dims
    mesh = Mesh(w, h)
    src = data.draw(st.integers(0, mesh.n_tiles - 1))
    links, depth = mesh.broadcast_tree(src)
    assert len(links) == mesh.n_tiles - 1
    reached = {src}
    children = set()
    for a, b in links:
        assert a in reached  # parents appear before children
        assert b not in children  # each tile has one parent
        children.add(b)
        reached.add(b)
    assert reached == set(range(mesh.n_tiles))
    assert depth == max(mesh.hops(src, t) for t in range(mesh.n_tiles))


@given(dims=dims, flits=st.integers(1, 8), data=st.data())
@settings(max_examples=60, deadline=None)
def test_latency_monotone_in_distance_and_flits(dims, flits, data):
    w, h = dims
    mesh = Mesh(w, h)
    src = data.draw(st.integers(0, mesh.n_tiles - 1))
    dst = data.draw(st.integers(0, mesh.n_tiles - 1))
    lat = mesh.unicast_latency(src, dst, flits)
    if src == dst:
        assert lat == 0
    else:
        assert lat == mesh.hops(src, dst) * mesh.hop_cycles + flits - 1
        assert mesh.unicast_latency(src, dst, flits + 1) == lat + 1
