"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core.checker import CoherenceChecker
from repro.sim.chip import PROTOCOLS, make_protocol
from repro.sim.config import ChipConfig, small_test_chip

ALL_PROTOCOLS = tuple(PROTOCOLS)


def tiny_chip(**kwargs) -> ChipConfig:
    """A 4x4 chip with very small caches (heavy eviction traffic)."""
    defaults = dict(mesh_width=4, mesh_height=4, n_areas=4, l1_kb=1, l2_kb=4)
    defaults.update(kwargs)
    return small_test_chip(**defaults)


def block_homed_at(config: ChipConfig, home: int, n: int = 0) -> int:
    """The ``n``-th block whose home L2 bank is ``home``."""
    return home + n * config.n_tiles


def addr_of(config: ChipConfig, block: int) -> int:
    return block << (config.block_bytes - 1).bit_length()


def addr_homed_at(config: ChipConfig, home: int, n: int = 0) -> int:
    """A full byte address for the n-th block homed at ``home``."""
    return addr_of(config, block_homed_at(config, home, n))


@pytest.fixture(params=ALL_PROTOCOLS)
def any_protocol(request):
    """One instance of each protocol on the tiny test chip."""
    return make_protocol(request.param, tiny_chip(), seed=0)


@pytest.fixture
def checker() -> CoherenceChecker:
    return CoherenceChecker()
