"""Unit tests for the detailed DDR memory model."""

import pytest

from repro.mem.dram import DdrMemoryControllers, DramBank, DramTiming, install_ddr_memory
from repro.noc.topology import Mesh


@pytest.fixture
def timing():
    return DramTiming()


class TestDramBank:
    def test_first_access_is_row_empty(self, timing):
        bank = DramBank()
        done = bank.access(row=3, now=0, timing=timing)
        assert done == timing.row_empty_latency
        assert bank.row_misses == 1

    def test_row_hit_is_cheaper(self, timing):
        bank = DramBank()
        t1 = bank.access(3, 0, timing)
        t2 = bank.access(3, t1, timing)
        assert t2 - t1 == timing.row_hit_latency
        assert timing.row_hit_latency < timing.row_miss_latency
        assert bank.row_hits == 1

    def test_row_conflict_pays_precharge(self, timing):
        bank = DramBank()
        t1 = bank.access(3, 0, timing)
        t2 = bank.access(9, t1, timing)
        assert t2 - t1 == timing.row_miss_latency

    def test_bank_queueing(self, timing):
        bank = DramBank()
        t1 = bank.access(3, 0, timing)
        # a second request issued while the bank is busy waits
        t2 = bank.access(3, 0, timing)
        assert t2 == t1 + timing.row_hit_latency

    def test_closed_page_policy(self):
        timing = DramTiming(closed_page=True)
        bank = DramBank()
        t1 = bank.access(3, 0, timing)
        t2 = bank.access(3, t1, timing)
        # no row hit: the page was closed after the first access
        assert t2 - t1 == timing.row_empty_latency
        assert bank.row_hits == 0


class TestDdrControllers:
    def test_same_row_blocks_hit(self):
        mesh = Mesh(4, 4)
        ddr = DdrMemoryControllers(mesh, n_controllers=4)
        home = 0
        lat1 = ddr.access_latency_at(home, block=0, now=0)
        lat2 = ddr.access_latency_at(home, block=1, now=10_000)
        assert lat2 < lat1  # row buffer hit on the neighbouring block
        assert ddr.row_hit_rate == 0.5

    def test_banks_operate_independently(self):
        mesh = Mesh(4, 4)
        ddr = DdrMemoryControllers(mesh, n_controllers=4, n_banks=4)
        home = 0
        # blocks 32 rows apart land in different banks: no queueing
        lat1 = ddr.access_latency_at(home, block=0, now=0)
        lat2 = ddr.access_latency_at(home, block=32 * 1, now=0)
        assert lat2 == lat1  # same cost, parallel banks

    def test_average_latency_near_simple_model(self):
        """The Sec. V-A claim's premise: the detailed model averages out
        close to the fixed 300-cycle latency."""
        mesh = Mesh(8, 8)
        ddr = DdrMemoryControllers(mesh, n_controllers=8)
        total = 0
        n = 400
        for i in range(n):
            home = (i * 13) % 64
            total += ddr.access_latency_at(home, block=i * 7, now=i * 1_000)
        avg = total / n
        assert 230 < avg < 380


def test_install_on_protocol():
    from repro.sim.chip import Chip, make_protocol
    from repro.sim.config import small_test_chip

    proto = make_protocol("dico", small_test_chip(), seed=0)
    ddr = install_ddr_memory(proto)
    chip = Chip(proto, "radix", seed=0)
    stats = chip.run_cycles(6_000)
    chip.verify_coherence()
    assert stats.memory_fetches > 0
    assert ddr.accesses == stats.memory_fetches
    assert 0.0 <= ddr.row_hit_rate <= 1.0
