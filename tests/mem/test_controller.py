"""Unit tests for the memory-controller model."""

import pytest

from repro.mem.controller import MemoryControllers, border_positions
from repro.noc.topology import Mesh


def test_border_positions_are_on_the_border():
    tiles = border_positions(8, 8, 8)
    assert len(tiles) == 8
    assert len(set(tiles)) == 8
    for t in tiles:
        x, y = t % 8, t // 8
        assert x in (0, 7) or y in (0, 7)


def test_border_positions_small_mesh():
    tiles = border_positions(2, 2, 4)
    assert sorted(tiles) == [0, 1, 2, 3]


def test_too_many_controllers_rejected():
    with pytest.raises(ValueError):
        border_positions(2, 2, 5)


def test_controller_mapping_is_nearest():
    mesh = Mesh(8, 8)
    mc = MemoryControllers(mesh, n_controllers=8, jitter_cycles=0)
    for tile in range(mesh.n_tiles):
        ctrl = mc.controller_for(tile)
        best = min(mesh.hops(tile, c) for c in mc.positions)
        assert mesh.hops(tile, ctrl) == best


def test_access_latency_includes_round_trip():
    mesh = Mesh(8, 8)
    mc = MemoryControllers(mesh, latency_cycles=300, jitter_cycles=0)
    center = mesh.tile_at(3, 3)
    lat = mc.access_latency(center)
    ctrl = mc.controller_for(center)
    expected = 300 + 2 * mesh.hops(center, ctrl) * mesh.hop_cycles
    assert lat == expected
    assert mc.accesses == 1


def test_latency_on_controller_tile_is_just_dram():
    mesh = Mesh(8, 8)
    mc = MemoryControllers(mesh, latency_cycles=300, jitter_cycles=0)
    ctrl = mc.positions[0]
    assert mc.access_latency(ctrl) == 300


def test_jitter_is_bounded_and_deterministic():
    mesh = Mesh(4, 4)
    a = MemoryControllers(mesh, latency_cycles=100, jitter_cycles=8, seed=42)
    b = MemoryControllers(mesh, latency_cycles=100, jitter_cycles=8, seed=42)
    seq_a = [a.access_latency(0) for _ in range(50)]
    seq_b = [b.access_latency(0) for _ in range(50)]
    assert seq_a == seq_b  # same seed, same delays
    base = 100 + 2 * mesh.hops(0, a.controller_for(0)) * mesh.hop_cycles
    assert all(base <= v <= base + 8 for v in seq_a)
    assert len(set(seq_a)) > 1  # jitter actually varies
