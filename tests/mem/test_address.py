"""Unit tests for physical-address manipulation."""

import pytest

from repro.mem.address import AddressMap


@pytest.fixture
def am() -> AddressMap:
    return AddressMap(phys_addr_bits=40, block_bytes=64, page_bytes=4096, n_tiles=64)


def test_block_and_page_of(am):
    addr = 0x12345678
    assert am.block_of(addr) == addr >> 6
    assert am.page_of(addr) == addr >> 12
    assert am.block_base(addr) == addr & ~0x3F


def test_blocks_per_page(am):
    assert am.blocks_per_page == 64
    assert am.page_offset_bits == 12
    assert am.block_offset_bits == 6


def test_block_in_page_roundtrip(am):
    page = 123
    for idx in (0, 1, 63):
        block = am.block_in_page(page, idx)
        assert am.page_of_block(block) == page
    with pytest.raises(ValueError):
        am.block_in_page(page, 64)


def test_home_tile_interleaves_over_all_tiles(am):
    homes = {am.home_tile(b) for b in range(256)}
    assert homes == set(range(64))
    assert am.home_tile(64) == 0
    assert am.home_tile(65) == 1


def test_address_bounds_checked(am):
    with pytest.raises(ValueError):
        am.block_of(1 << 40)
    with pytest.raises(ValueError):
        am.block_of(-1)
    am.block_of((1 << 40) - 1)  # max address is fine


def test_validation_of_construction():
    with pytest.raises(ValueError):
        AddressMap(block_bytes=48)
    with pytest.raises(ValueError):
        AddressMap(page_bytes=32, block_bytes=64)
    with pytest.raises(ValueError):
        AddressMap(n_tiles=48)
