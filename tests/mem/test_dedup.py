"""Unit tests for the hypervisor memory-deduplication model."""

import pytest

from repro.mem.dedup import DedupPageTable


def test_private_mapping_allocates_distinct_frames():
    t = DedupPageTable()
    p0 = t.map_private(0, 0)
    p1 = t.map_private(0, 1)
    p2 = t.map_private(1, 0)
    assert len({p0, p1, p2}) == 3
    assert t.translate(0, 0) == p0
    assert t.translate(1, 0) == p2


def test_duplicate_mapping_rejected():
    t = DedupPageTable()
    t.map_private(0, 0)
    with pytest.raises(ValueError):
        t.map_private(0, 0)


def test_deduplication_shares_one_frame():
    t = DedupPageTable()
    ppage = t.map_deduplicated({0: 5, 1: 9, 2: 7, 3: 5})
    for vm, vp in ((0, 5), (1, 9), (2, 7), (3, 5)):
        assert t.translate(vm, vp) == ppage
    assert t.is_deduplicated_ppage(ppage)
    assert t.dedup_vms(ppage) == {0, 1, 2, 3}
    assert t.pages_saved == 3
    assert t.pages_allocated == 1


def test_dedup_needs_two_vms():
    t = DedupPageTable()
    with pytest.raises(ValueError):
        t.map_deduplicated({0: 1})


def test_copy_on_write_breaks_sharing_for_writer_only():
    t = DedupPageTable()
    shared = t.map_deduplicated({0: 1, 1: 1, 2: 1})
    new_ppage, event = t.translate_write(0, 1)
    assert new_ppage != shared
    assert event is not None
    assert event.vm == 0 and event.old_ppage == shared
    # the writer now reads its private copy; others keep the shared one
    assert t.translate(0, 1) == new_ppage
    assert t.translate(1, 1) == shared
    assert t.translate(2, 1) == shared
    assert t.dedup_vms(shared) == {1, 2}


def test_cow_on_second_to_last_sharer_dissolves_dedup():
    t = DedupPageTable()
    shared = t.map_deduplicated({0: 1, 1: 1})
    t.translate_write(0, 1)
    assert not t.is_deduplicated_ppage(shared)
    # VM 1 still reads the old frame
    assert t.translate(1, 1) == shared


def test_write_to_private_page_is_not_cow():
    t = DedupPageTable()
    p = t.map_private(0, 0)
    ppage, event = t.translate_write(0, 0)
    assert ppage == p
    assert event is None
    assert t.cow_events == []


def test_dedup_ratio_matches_saved_fraction():
    t = DedupPageTable()
    # 4 VMs x 10 logical pages each: 6 private + 4 deduplicated
    for vm in range(4):
        for vp in range(6):
            t.map_private(vm, vp)
    for j in range(4):
        t.map_deduplicated({vm: 6 + j for vm in range(4)})
    # logical = 40 pages, physical = 24 + 4 = 28, saved = 12
    assert t.pages_saved == 12
    assert t.dedup_ratio == pytest.approx(12 / 40)


def test_translate_unmapped_raises():
    t = DedupPageTable()
    with pytest.raises(KeyError):
        t.translate(0, 99)


def test_mapped_pages_iteration():
    t = DedupPageTable()
    t.map_private(0, 0)
    t.map_deduplicated({0: 1, 1: 1})
    entries = set(t.mapped_pages())
    assert len(entries) == 3
    vms = {vm for vm, _, _ in entries}
    assert vms == {0, 1}
