"""Unit tests for the heterogeneous-interconnect extension."""

import pytest

from repro.core.messages import MessageType
from repro.noc.heterogeneous import (
    CRITICAL_MESSAGES,
    HeterogeneousNetwork,
    WireConfig,
    install_heterogeneous_network,
)
from repro.noc.network import Network
from repro.noc.topology import Mesh


@pytest.fixture
def het():
    return HeterogeneousNetwork(Mesh(4, 4))


def test_critical_control_rides_fast_wires(het):
    base = Network(Mesh(4, 4))
    d_base = base.send(0, 3, flits=1, msg_type=MessageType.GETS)
    d_het = het.send(0, 3, flits=1, msg_type=MessageType.GETS)
    assert d_het.latency == round(d_base.latency / 2)
    assert het.fast_messages == 1
    # fast wires cost double the flit energy
    assert het.weighted_flit_links == pytest.approx(2 * 1 * 3)


def test_noncritical_rides_slow_wires(het):
    base = Network(Mesh(4, 4))
    d_base = base.send(0, 3, flits=5, msg_type=MessageType.WRITEBACK)
    d_het = het.send(0, 3, flits=5, msg_type=MessageType.WRITEBACK)
    assert d_het.latency == round(d_base.latency * 1.5)
    assert het.slow_messages == 1
    assert het.weighted_flit_links == pytest.approx(0.5 * 5 * 3)


def test_critical_data_too_wide_for_l_wires(het):
    base = Network(Mesh(4, 4))
    d_base = base.send(0, 3, flits=5, msg_type=MessageType.DATA)
    d_het = het.send(0, 3, flits=5, msg_type=MessageType.DATA)
    assert d_het.latency == d_base.latency  # normal wires
    assert het.fast_messages == 0 and het.slow_messages == 0
    assert het.weighted_flit_links == pytest.approx(5 * 3)


def test_broadcast_classification(het):
    d = het.broadcast(0, flits=1, msg_type=MessageType.INV_BCAST)
    assert het.fast_messages == 1
    # tree links weighted at the fast factor
    assert het.weighted_flit_links == pytest.approx(2 * 15)


def test_hint_messages_are_noncritical():
    assert MessageType.HINT not in CRITICAL_MESSAGES
    assert MessageType.PUT not in CRITICAL_MESSAGES
    assert MessageType.GETS in CRITICAL_MESSAGES


def test_link_energy_ratio(het):
    het.send(0, 3, flits=1, msg_type=MessageType.GETS)      # 2x energy
    het.send(0, 3, flits=1, msg_type=MessageType.HINT)      # 0.5x
    assert 0.5 < het.link_energy_ratio() < 2.0


def test_wire_config_validation():
    with pytest.raises(ValueError):
        WireConfig(fast_speedup=0.5)
    with pytest.raises(ValueError):
        WireConfig(slow_slowdown=0.9)


def test_install_on_protocol_and_run():
    from repro.sim.chip import Chip, make_protocol
    from repro.sim.config import small_test_chip

    proto = make_protocol("dico-providers", small_test_chip(), seed=0)
    net = install_heterogeneous_network(proto)
    chip = Chip(proto, "radix", seed=0)
    stats = chip.run_cycles(5_000)
    chip.verify_coherence()
    assert stats.operations > 0
    assert net.fast_messages > 0
    assert net.slow_messages > 0
    # the mix saves link energy overall (most flits are data/acks)
    assert net.link_energy_ratio() < 1.1
