"""Unit tests for the 2D-mesh topology and XY routing."""

import pytest

from repro.noc.topology import Mesh
from repro.sim.config import NocConfig


@pytest.fixture
def mesh() -> Mesh:
    return Mesh(8, 8)


def test_coords_roundtrip(mesh):
    for t in range(64):
        x, y = mesh.coords(t)
        assert mesh.tile_at(x, y) == t


def test_hops_is_manhattan(mesh):
    assert mesh.hops(0, 0) == 0
    assert mesh.hops(0, 7) == 7
    assert mesh.hops(0, 63) == 14
    assert mesh.hops(mesh.tile_at(2, 3), mesh.tile_at(5, 1)) == 3 + 2


def test_route_is_x_then_y(mesh):
    src, dst = mesh.tile_at(1, 1), mesh.tile_at(3, 4)
    route = mesh.route(src, dst)
    assert len(route) == mesh.hops(src, dst)
    # links chain from src to dst
    assert route[0][0] == src
    assert route[-1][1] == dst
    for (a, b), (c, d) in zip(route, route[1:]):
        assert b == c
    # X moves first: the first two links change only x
    xs = [mesh.coords(a)[0] for a, _ in route] + [mesh.coords(dst)[0]]
    ys = [mesh.coords(a)[1] for a, _ in route] + [mesh.coords(dst)[1]]
    assert ys[0] == ys[1] == ys[2]  # y fixed while x moves


def test_route_to_self_is_empty(mesh):
    assert mesh.route(5, 5) == ()


def test_unicast_latency_formula(mesh):
    # Table III: 2 link + 2 switch + 1 router = 5 cycles/hop, plus
    # (flits-1) serialization
    assert mesh.hop_cycles == 5
    assert mesh.unicast_latency(0, 1, flits=1) == 5
    assert mesh.unicast_latency(0, 1, flits=5) == 9
    assert mesh.unicast_latency(0, 63, flits=1) == 14 * 5
    assert mesh.unicast_latency(3, 3, flits=5) == 0


def test_neighbors(mesh):
    corner = set(mesh.neighbors(0))
    assert corner == {1, 8}
    center = set(mesh.neighbors(mesh.tile_at(3, 3)))
    assert len(center) == 4


def test_broadcast_tree_spans_chip(mesh):
    for src in (0, 27, 63):
        links, depth = mesh.broadcast_tree(src)
        assert len(links) == mesh.n_tiles - 1
        reached = {src}
        for a, b in links:
            assert a in reached  # tree property: parent reached first
            reached.add(b)
        assert reached == set(range(mesh.n_tiles))
        assert depth == max(mesh.hops(src, t) for t in range(mesh.n_tiles))


def test_broadcast_latency(mesh):
    assert mesh.broadcast_latency(0, flits=1) == 14 * 5
    center = mesh.tile_at(3, 3)
    _, depth = mesh.broadcast_tree(center)
    assert mesh.broadcast_latency(center, flits=1) == depth * 5


def test_average_distance_matches_theory(mesh):
    # Sec. V-D: theoretical average distance in a 2D mesh ~ (2/3)*sqrt(ntc)
    avg = mesh.average_distance()
    assert avg == pytest.approx((2 / 3) * 8, rel=0.05)


def test_custom_noc_constants():
    mesh = Mesh(4, 4, NocConfig(link_cycles=1, switch_cycles=1, router_cycles=1))
    assert mesh.hop_cycles == 3
    assert mesh.unicast_latency(0, 3, flits=2) == 3 * 3 + 1


def test_bounds_checked(mesh):
    with pytest.raises(ValueError):
        mesh.coords(64)
    with pytest.raises(ValueError):
        mesh.route(0, 64)
    with pytest.raises(ValueError):
        Mesh(0, 4)
