"""Unit tests for the network message layer."""

import pytest

from repro.noc.network import Network
from repro.noc.topology import Mesh
from repro.sim.config import NocConfig


@pytest.fixture
def net() -> Network:
    return Network(Mesh(4, 4))


def test_send_accounts_flits_and_routing(net):
    d = net.send(0, 3, flits=5, msg_type="Data")
    assert d.hops == 3
    assert d.latency == 3 * 5 + 4
    st = net.stats
    assert st.messages == 1
    assert st.flit_link_traversals == 15
    assert st.router_traversals == 3
    assert st.routing_events == 1
    assert st.by_type["Data"] == 1
    assert st.flits_by_type["Data"] == 5


def test_self_send_is_free(net):
    d = net.send(5, 5, flits=5, msg_type="Data")
    assert d.latency == 0 and d.hops == 0
    assert net.stats.flit_link_traversals == 0
    # intra-tile requests never enter the NoC: they are tallied apart
    # from real injections and contribute no per-type traffic
    assert net.stats.messages == 0
    assert net.stats.local_messages == 1
    assert net.stats.by_type == {}
    assert net.stats.flits_by_type == {}
    assert net.stats.routing_events == 0


def test_broadcast_accounting(net):
    d = net.broadcast(0, flits=1, msg_type="Inv_Bcast")
    st = net.stats
    assert st.broadcasts == 1
    assert st.flit_link_traversals == 15  # n_tiles - 1 tree links
    assert st.routing_events == 15
    assert d.latency == 6 * net.mesh.hop_cycles  # depth from corner of 4x4


def test_multicast_latency_is_worst_leg(net):
    d = net.multicast(0, [1, 15], flits=1)
    assert d.latency == net.mesh.unicast_latency(0, 15, 1)
    assert net.stats.messages == 2


def test_multicast_with_self_destination(net):
    # a sharer list can include the requester's own tile: that leg is a
    # free self-send and must not dominate (or zero out) the latency
    d = net.multicast(5, [5, 6], flits=2, msg_type="Inv")
    assert d.latency == net.mesh.unicast_latency(5, 6, 2)
    assert net.stats.messages == 1
    assert net.stats.local_messages == 1
    assert net.stats.by_type["Inv"] == 1


def test_multicast_empty_and_all_local(net):
    assert net.multicast(3, [], flits=1).latency == 0
    d = net.multicast(3, [3, 3], flits=1)
    assert d.latency == 0 and d.hops == 0
    assert net.stats.messages == 0
    assert net.stats.local_messages == 2


def test_link_load_tracking():
    net = Network(Mesh(4, 4), track_link_load=True)
    net.send(0, 3, flits=2)
    assert sum(net.stats.link_load.values()) == 6  # 2 flits x 3 links
    assert net.stats.link_load[(0, 1)] == 2


def test_contention_adds_queueing_delay():
    mesh = Mesh(4, 1, NocConfig(model_contention=True))
    net = Network(mesh)
    base = net.send(0, 3, flits=5, now=0).latency
    # a second packet at the same instant must queue behind the first
    second = net.send(0, 3, flits=5, now=0).latency
    assert second > base


def test_contention_delay_exact_link_occupancy():
    # each packet occupies every link of its path for ``flits`` cycles,
    # so back-to-back identical packets queue by exactly ``flits`` each
    mesh = Mesh(4, 1, NocConfig(model_contention=True))
    net = Network(mesh)
    hop = mesh.hop_cycles
    free_latency = 2 * hop + 3  # 2 hops, 4 flits
    assert net.send(0, 2, flits=4, now=0).latency == free_latency
    assert net.send(0, 2, flits=4, now=0).latency == free_latency + 4
    assert net.send(0, 2, flits=4, now=0).latency == free_latency + 8
    # once the links drain, a later packet sees no queueing again
    assert net.send(0, 2, flits=4, now=1_000).latency == free_latency


def test_contention_delay_walks_the_path():
    # direct check of the walk: with link (0,1) busy until cycle 9 and
    # (1,2) free, a packet at now=0 waits 9 cycles at the first link,
    # then arrives at (1,2) late enough to pass without further wait
    mesh = Mesh(4, 1, NocConfig(model_contention=True))
    net = Network(mesh)
    hop = mesh.hop_cycles
    net._link_free[(0, 1)] = 9
    route = mesh.route(0, 2)
    assert net._contention_delay(route, flits=2, now=0) == 9
    # the walk updated the occupancy horizon of both links:
    # head leaves (0,1) at 9+hop, tail 2 flits behind the head
    assert net._link_free[(0, 1)] == 9 + 2
    assert net._link_free[(1, 2)] == 9 + hop + 2


def test_contention_disjoint_paths_do_not_interact():
    mesh = Mesh(4, 4, NocConfig(model_contention=True))
    net = Network(mesh)
    a = net.send(0, 3, flits=5, now=0).latency
    # a packet on a disjoint row shares no links and sees no delay
    b = net.send(12, 15, flits=5, now=0).latency
    assert a == b


def test_no_contention_by_default(net):
    a = net.send(0, 3, flits=5, now=0).latency
    b = net.send(0, 3, flits=5, now=0).latency
    assert a == b


def test_reset_stats(net):
    net.send(0, 1, flits=1)
    net.reset_stats()
    assert net.stats.messages == 0
    assert net.stats.flit_link_traversals == 0


def test_stats_merge():
    a = Network(Mesh(2, 2))
    b = Network(Mesh(2, 2))
    a.send(0, 1, flits=1, msg_type="x")
    b.send(0, 3, flits=5, msg_type="x")
    a.stats.merge(b.stats)
    assert a.stats.messages == 2
    assert a.stats.by_type["x"] == 2
    snap = a.stats.snapshot()
    assert snap["messages"] == 2
