"""Unit tests for the network message layer."""

import pytest

from repro.noc.network import Network
from repro.noc.topology import Mesh
from repro.sim.config import NocConfig


@pytest.fixture
def net() -> Network:
    return Network(Mesh(4, 4))


def test_send_accounts_flits_and_routing(net):
    d = net.send(0, 3, flits=5, msg_type="Data")
    assert d.hops == 3
    assert d.latency == 3 * 5 + 4
    st = net.stats
    assert st.messages == 1
    assert st.flit_link_traversals == 15
    assert st.router_traversals == 3
    assert st.routing_events == 1
    assert st.by_type["Data"] == 1
    assert st.flits_by_type["Data"] == 5


def test_self_send_is_free(net):
    d = net.send(5, 5, flits=5)
    assert d.latency == 0 and d.hops == 0
    assert net.stats.flit_link_traversals == 0
    assert net.stats.messages == 1  # still counted as a message


def test_broadcast_accounting(net):
    d = net.broadcast(0, flits=1, msg_type="Inv_Bcast")
    st = net.stats
    assert st.broadcasts == 1
    assert st.flit_link_traversals == 15  # n_tiles - 1 tree links
    assert st.routing_events == 15
    assert d.latency == 6 * net.mesh.hop_cycles  # depth from corner of 4x4


def test_multicast_latency_is_worst_leg(net):
    d = net.multicast(0, [1, 15], flits=1)
    assert d.latency == net.mesh.unicast_latency(0, 15, 1)
    assert net.stats.messages == 2


def test_link_load_tracking():
    net = Network(Mesh(4, 4), track_link_load=True)
    net.send(0, 3, flits=2)
    assert sum(net.stats.link_load.values()) == 6  # 2 flits x 3 links
    assert net.stats.link_load[(0, 1)] == 2


def test_contention_adds_queueing_delay():
    mesh = Mesh(4, 1, NocConfig(model_contention=True))
    net = Network(mesh)
    base = net.send(0, 3, flits=5, now=0).latency
    # a second packet at the same instant must queue behind the first
    second = net.send(0, 3, flits=5, now=0).latency
    assert second > base


def test_no_contention_by_default(net):
    a = net.send(0, 3, flits=5, now=0).latency
    b = net.send(0, 3, flits=5, now=0).latency
    assert a == b


def test_reset_stats(net):
    net.send(0, 1, flits=1)
    net.reset_stats()
    assert net.stats.messages == 0
    assert net.stats.flit_link_traversals == 0


def test_stats_merge():
    a = Network(Mesh(2, 2))
    b = Network(Mesh(2, 2))
    a.send(0, 1, flits=1, msg_type="x")
    b.send(0, 3, flits=5, msg_type="x")
    a.stats.merge(b.stats)
    assert a.stats.messages == 2
    assert a.stats.by_type["x"] == 2
    snap = a.stats.snapshot()
    assert snap["messages"] == 2
