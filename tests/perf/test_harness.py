"""Unit tests for the ``repro perf`` throughput harness.

The real reference cells take seconds each, so everything here runs on
tiny cells (small test chip, short windows) — the harness logic is
cell-agnostic.
"""

import json

import pytest

from repro import cli
from repro.perf import harness
from repro.perf.harness import (
    QUICK_CELLS,
    REFERENCE_CELLS,
    CellResult,
    assert_identical_cells,
    compare_reports,
    config_fingerprint,
    geomean,
    git_rev,
    git_rev_in_repo,
    load_report,
    run_cells,
    write_report,
)
from repro.sim.config import small_test_chip
from repro.sweep import RunSpec
from repro.sweep.spec import config_to_dict

TINY = config_to_dict(small_test_chip())


def tiny_cells(n=2):
    protocols = ("directory", "dico")[:n]
    return tuple(
        RunSpec(protocol=p, workload="mixed-sci", seed=7,
                cycles=1_500, warmup=500, config=TINY)
        for p in protocols
    )


def test_reference_grid_is_pinned():
    # the reference subset is a contract: all four protocols on one
    # commercial and one scientific workload, fixed windows and seed
    assert len(REFERENCE_CELLS) == 8
    assert {c.protocol for c in REFERENCE_CELLS} == {
        "directory", "dico", "dico-providers", "dico-arin"
    }
    assert {c.workload for c in REFERENCE_CELLS} == {"apache", "radix"}
    assert all(c.cycles == 100_000 and c.seed == 1 for c in REFERENCE_CELLS)
    # quick cells keep the same grid shape, just smaller windows
    assert [(c.protocol, c.workload) for c in QUICK_CELLS] == [
        (c.protocol, c.workload) for c in REFERENCE_CELLS
    ]


def test_run_cells_times_and_counts(capsys):
    lines = []
    results = run_cells(tiny_cells(), repeat=1, progress=lines.append)
    assert len(results) == 2
    for r in results:
        assert r.operations > 0
        assert r.wall_s > 0
        assert r.ops_per_s == pytest.approx(r.operations / r.wall_s)
    assert len(lines) == 2 and "ops/s" in lines[0]


def test_repeat_takes_median_and_checks_determinism():
    cell = tiny_cells(1)[0]
    r = harness._time_cell(cell, repeat=3)
    single = harness._time_cell(cell, repeat=1)
    assert r.operations == single.operations  # deterministic op count


def test_config_fingerprint_tracks_grid_identity():
    a = config_fingerprint(tiny_cells(2))
    assert a == config_fingerprint(tiny_cells(2))
    assert a != config_fingerprint(tiny_cells(1))
    assert a != config_fingerprint(REFERENCE_CELLS)


def test_report_round_trip_and_schema(tmp_path):
    cells = tiny_cells(1)
    results = [CellResult(spec=cells[0], operations=1000, wall_s=0.5)]
    report = harness.build_report(cells, results, quick=True, repeat=1)
    assert report["schema"] == harness.BENCH_PERF_SCHEMA_VERSION
    assert report["config_fingerprint"] == config_fingerprint(cells)
    assert report["total_wall_s"] == pytest.approx(0.5)
    cell_doc = report["cells"][0]
    assert cell_doc["ops_per_s"] == pytest.approx(2000.0)
    assert cell_doc["protocol"] == "directory"

    path = tmp_path / "BENCH_PERF.json"
    write_report(report, str(path))
    assert load_report(str(path)) == json.loads(path.read_text())

    bad = dict(report, schema=99)
    write_report(bad, str(path))
    with pytest.raises(ValueError, match="schema"):
        load_report(str(path))


def test_compare_reports_matches_cells_and_computes_speedup():
    cells = tiny_cells(2)
    now = harness.build_report(
        cells,
        [CellResult(spec=c, operations=1000, wall_s=0.5) for c in cells],
        quick=True, repeat=1,
    )
    base = harness.build_report(
        cells,
        [CellResult(spec=c, operations=1000, wall_s=1.0) for c in cells],
        quick=True, repeat=1,
    )
    comparison = compare_reports(now, base)
    assert len(comparison.rows) == 2
    for _, base_ops, now_ops, speedup in comparison.rows:
        assert speedup == pytest.approx(2.0)
    assert comparison.complete
    assert comparison.geomean_speedup == pytest.approx(2.0)
    # a baseline with no matching cells yields no rows, not an error —
    # but the orphaned cells are reported, not silently dropped
    empty = compare_reports(now, {"cells": []})
    assert empty.rows == []
    assert empty.geomean_speedup is None
    assert not empty.complete
    assert len(empty.unmatched_report) == 2


def test_compare_reports_lists_unmatched_cells_on_both_sides():
    cells = tiny_cells(2)
    now = harness.build_report(
        cells,
        [CellResult(spec=c, operations=1000, wall_s=0.5) for c in cells],
        quick=True, repeat=1,
    )
    # baseline shares only the first cell; its second cell is a
    # different spec the current report never timed
    other = RunSpec(protocol="vh", workload="mixed-sci", seed=7,
                    cycles=1_500, warmup=500, config=TINY)
    base = harness.build_report(
        (cells[0], other),
        [CellResult(spec=c, operations=1000, wall_s=1.0)
         for c in (cells[0], other)],
        quick=True, repeat=1,
    )
    comparison = compare_reports(now, base)
    assert [r[0] for r in comparison.rows] == ["directory/mixed-sci"]
    assert comparison.unmatched_report == ["dico/mixed-sci"]
    assert comparison.unmatched_baseline == ["vh/mixed-sci"]
    assert not comparison.complete


def test_compare_reports_unusable_baseline_throughput_is_unmatched():
    cells = tiny_cells(1)
    now = harness.build_report(
        cells,
        [CellResult(spec=cells[0], operations=1000, wall_s=0.5)],
        quick=True, repeat=1,
    )
    # wall_s 0 → ops_per_s 0.0: cannot anchor a speedup ratio
    base = harness.build_report(
        cells,
        [CellResult(spec=cells[0], operations=1000, wall_s=0.0)],
        quick=True, repeat=1,
    )
    comparison = compare_reports(now, base)
    assert comparison.rows == []
    assert comparison.unmatched_report == ["directory/mixed-sci"]


def test_geomean():
    # an empty sequence has no geometric mean — a fabricated 0.0 would
    # read as "infinitely slow" in a comparison
    with pytest.raises(ValueError, match="empty"):
        geomean([])
    assert geomean([2.0, 8.0]) == pytest.approx(4.0)
    assert geomean([3.0]) == pytest.approx(3.0)


def test_git_rev_is_nonempty_string():
    rev = git_rev()
    assert isinstance(rev, str) and rev


def test_git_rev_in_repo():
    # the placeholder can never be vouched for
    assert git_rev_in_repo("unknown") is None
    assert git_rev_in_repo("") is None
    rev = git_rev()
    if rev != "unknown":  # running inside the git checkout
        assert git_rev_in_repo(rev) is True
        # a syntactically valid rev that no commit here matches
        assert git_rev_in_repo("f" * 40) is False


def test_cell_results_carry_stats_digest_and_engines_agree():
    cell = tiny_cells(1)[0]
    obj = harness._time_cell(cell, repeat=1, engine="object")
    arr = harness._time_cell(cell, repeat=1, engine="array")
    assert obj.stats_sha256 and len(obj.stats_sha256) == 64
    # the bit-identity contract: both engines hash to the same stats
    assert obj.stats_sha256 == arr.stats_sha256
    assert_identical_cells([obj], [arr])


def test_assert_identical_cells_raises_on_digest_mismatch():
    cell = tiny_cells(1)[0]
    a = CellResult(spec=cell, operations=10, wall_s=0.1, stats_sha256="a" * 64)
    b = CellResult(spec=cell, operations=10, wall_s=0.1, stats_sha256="b" * 64)
    with pytest.raises(RuntimeError, match="engines disagree"):
        assert_identical_cells([a], [b])


def test_cli_perf_end_to_end(tmp_path, monkeypatch, capsys):
    # wire-through test: `repro perf --quick` on monkeypatched tiny
    # cells writes a loadable report and prints the table
    monkeypatch.setattr(harness, "QUICK_CELLS", tiny_cells(2))
    out = tmp_path / "BENCH_PERF.json"
    assert cli.main(["perf", "--quick", "--output", str(out)]) == 0
    report = load_report(str(out))
    assert len(report["cells"]) == 2
    assert report["quick"] is True
    captured = capsys.readouterr()
    assert "ops/s" in captured.out

    # second run comparing against the first as baseline
    out2 = tmp_path / "BENCH_PERF2.json"
    assert cli.main([
        "perf", "--quick", "--output", str(out2),
        "--baseline", str(out),
    ]) == 0
    captured = capsys.readouterr()
    assert "speedup" in captured.out
    assert "geomean" in captured.out
    report2 = load_report(str(out2))
    assert report2["baseline"]["cells"] == report["cells"]


def test_cli_perf_engine_both_embeds_identical_object_baseline(
    tmp_path, monkeypatch, capsys
):
    monkeypatch.setattr(harness, "QUICK_CELLS", tiny_cells(2))
    out = tmp_path / "BENCH_PERF.json"
    assert cli.main([
        "perf", "--quick", "--engine", "both", "--output", str(out),
    ]) == 0
    report = load_report(str(out))
    assert report["engine"] == "array"
    assert report["baseline"]["engine"] == "object"
    # same grid, and bit-identical statistics cell by cell
    for arr_cell, obj_cell in zip(
        report["cells"], report["baseline"]["cells"]
    ):
        assert arr_cell["stats_sha256"] == obj_cell["stats_sha256"]
        assert arr_cell["operations"] == obj_cell["operations"]
    captured = capsys.readouterr()
    assert "bit-identical to object baseline" in captured.out
    assert "speedup" in captured.out


def test_cli_perf_rejects_unknown_engine(monkeypatch, capsys):
    monkeypatch.setattr(harness, "QUICK_CELLS", tiny_cells(1))
    assert cli.main(["perf", "--quick", "--output", ""]) == 0
    monkeypatch.setenv("REPRO_ENGINE", "warp-drive")
    assert cli.main(["perf", "--quick", "--output", ""]) == 2
    captured = capsys.readouterr()
    assert "warp-drive" in captured.err


def test_cli_perf_profile_flag(tmp_path, monkeypatch, capsys):
    monkeypatch.setattr(harness, "QUICK_CELLS", tiny_cells(1))
    assert cli.main([
        "perf", "--quick", "--output", "", "--profile", "5",
    ]) == 0
    captured = capsys.readouterr()
    assert "cProfile top 5" in captured.out
    assert "cumulative" in captured.out


def test_cli_perf_profile_covers_selected_engine(
    tmp_path, monkeypatch, capsys
):
    # --profile must profile the engine that was timed, labelled; under
    # --engine both, one labelled pass per engine, with the array pass
    # attributing time to the compiled runner (not Core._issue_fast)
    monkeypatch.setattr(harness, "QUICK_CELLS", tiny_cells(1))
    assert cli.main([
        "perf", "--quick", "--engine", "both", "--output", "",
        "--profile", "40",
    ]) == 0
    captured = capsys.readouterr()
    assert "engine object" in captured.out
    assert "engine array" in captured.out
    obj_part, arr_part = captured.out.split("engine array", 1)
    assert "_issue_fast" in obj_part
    assert "runner" in arr_part


def test_cell_results_record_l1_miss_rate():
    cell = tiny_cells(1)[0]
    r = harness._time_cell(cell, repeat=1)
    assert r.l1_miss_rate is not None
    assert 0.0 < r.l1_miss_rate < 1.0
    doc = r.to_dict()
    assert doc["l1_miss_rate"] == pytest.approx(r.l1_miss_rate, abs=1e-6)


def test_load_report_upgrades_schema_v1(tmp_path):
    cells = tiny_cells(1)
    report = harness.build_report(
        cells,
        [CellResult(spec=cells[0], operations=1000, wall_s=0.5,
                    l1_miss_rate=0.25)],
        quick=True, repeat=1,
    )
    # regress the report to the v1 shape: no schema-2 field, embedded
    # v1 baseline
    v1 = json.loads(json.dumps(report))
    v1["schema"] = 1
    for c in v1["cells"]:
        del c["l1_miss_rate"]
    v1["baseline"] = json.loads(json.dumps(v1))
    path = tmp_path / "old.json"
    write_report(v1, str(path))

    upgraded = load_report(str(path))
    assert upgraded["schema"] == harness.BENCH_PERF_SCHEMA_VERSION
    # the rate was not recorded, not zero
    assert upgraded["cells"][0]["l1_miss_rate"] is None
    assert upgraded["baseline"]["schema"] == harness.BENCH_PERF_SCHEMA_VERSION
    assert upgraded["baseline"]["cells"][0]["l1_miss_rate"] is None

    # v2 reports round-trip untouched
    path2 = tmp_path / "new.json"
    write_report(report, str(path2))
    assert load_report(str(path2))["cells"][0]["l1_miss_rate"] == 0.25


def test_cli_perf_min_geomean_gate(tmp_path, monkeypatch, capsys):
    monkeypatch.setattr(harness, "QUICK_CELLS", tiny_cells(1))
    table = tmp_path / "comparison.txt"
    # engines are bit-identical, so array-vs-object speedup is ~1×;
    # a gate of 0.01 always passes, 1000 always fails
    assert cli.main([
        "perf", "--quick", "--engine", "both", "--output", "",
        "--min-geomean", "0.01", "--comparison-output", str(table),
    ]) == 0
    captured = capsys.readouterr()
    assert "geomean gate" in captured.err
    assert "geomean" in table.read_text()

    assert cli.main([
        "perf", "--quick", "--engine", "both", "--output", "",
        "--min-geomean", "1000",
    ]) == 1
    captured = capsys.readouterr()
    assert "below the gate" in captured.err

    # gating without a comparison to gate on is a usage error
    assert cli.main([
        "perf", "--quick", "--output", "", "--min-geomean", "0.5",
    ]) == 2
