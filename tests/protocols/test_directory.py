"""Scenario tests for the flat directory protocol (Sec. II-A)."""

import pytest

from repro.core.protocols.directory import DirectoryProtocol
from repro.core.states import L1State

from ..conftest import addr_homed_at, block_homed_at, tiny_chip


@pytest.fixture
def proto() -> DirectoryProtocol:
    return DirectoryProtocol(tiny_chip(), seed=0)


HOME = 5
OTHER = 9  # a tile that is not the home


def test_cold_read_grants_exclusive(proto):
    addr = addr_homed_at(proto.config, HOME)
    block = block_homed_at(proto.config, HOME)
    r = proto.access(OTHER, addr, is_write=False, now=0)
    assert not r.needs_retry
    assert r.category == "memory"
    line = proto.l1s[OTHER].peek(block)
    assert line is not None and line.state is L1State.E
    # the home keeps data + owner pointer in its entry (NCID)
    entry = proto.l2s[HOME].peek(block)
    assert entry is not None and entry.owner_tile == OTHER


def test_second_reader_downgrades_owner_three_hops(proto):
    addr = addr_homed_at(proto.config, HOME)
    block = block_homed_at(proto.config, HOME)
    proto.access(OTHER, addr, False, 0)
    r = proto.access(2, addr, False, 2500)
    assert r.category == "unpredicted_fwd"  # classic 3-hop indirection
    assert proto.l1s[OTHER].peek(block).state is L1State.S
    assert proto.l1s[2].peek(block).state is L1State.S
    entry = proto.l2s[HOME].peek(block)
    assert entry.owner_tile is None
    assert entry.sharers & (1 << OTHER) and entry.sharers & (1 << 2)


def test_read_hit_costs_l1_latency(proto):
    addr = addr_homed_at(proto.config, HOME)
    proto.access(OTHER, addr, False, 0)
    r = proto.access(OTHER, addr, False, 2500)
    assert r.l1_hit
    assert r.latency == proto.config.l1.access_latency


def test_silent_upgrade_on_exclusive(proto):
    addr = addr_homed_at(proto.config, HOME)
    block = block_homed_at(proto.config, HOME)
    proto.access(OTHER, addr, False, 0)
    r = proto.access(OTHER, addr, True, 2500)
    assert r.l1_hit  # E -> M without any message
    assert proto.l1s[OTHER].peek(block).state is L1State.M
    assert proto.checker.current_version(block) == 1


def test_write_invalidates_all_sharers(proto):
    addr = addr_homed_at(proto.config, HOME)
    block = block_homed_at(proto.config, HOME)
    for reader in (1, 2, 3):
        proto.access(reader, addr, False, reader * 2500)
    writer = 7
    r = proto.access(writer, addr, True, 12000)
    assert not r.needs_retry
    for reader in (1, 2, 3):
        assert proto.l1s[reader].peek(block) is None
    assert proto.l1s[writer].peek(block).state is L1State.M
    assert proto.stats.unicast_invalidations >= 3
    proto.check_block(block)


def test_write_to_owned_block_forwards(proto):
    addr = addr_homed_at(proto.config, HOME)
    block = block_homed_at(proto.config, HOME)
    proto.access(1, addr, True, 0)  # tile 1 becomes M
    r = proto.access(2, addr, True, 2500)
    assert r.category in ("unpredicted_fwd", "unpredicted_home")
    assert proto.l1s[1].peek(block) is None
    assert proto.l1s[2].peek(block).state is L1State.M
    assert proto.checker.current_version(block) == 2


def test_upgrade_from_shared_keeps_copy(proto):
    addr = addr_homed_at(proto.config, HOME)
    block = block_homed_at(proto.config, HOME)
    proto.access(1, addr, False, 0)
    proto.access(2, addr, False, 2500)  # both S now
    r = proto.access(1, addr, True, 5000)
    assert not r.l1_hit  # upgrade miss
    assert proto.l1s[1].peek(block).state is L1State.M
    assert proto.l1s[2].peek(block) is None


def test_busy_block_forces_retry(proto):
    addr = addr_homed_at(proto.config, HOME)
    proto.access(1, addr, True, 0)  # write holds the block busy
    r = proto.access(2, addr, False, 25)
    assert r.needs_retry
    assert r.retry_at > 1
    r2 = proto.access(2, addr, False, r.retry_at)
    assert not r2.needs_retry


def test_dirty_eviction_writes_back_to_l2(proto):
    cfg = proto.config
    block = block_homed_at(cfg, HOME)
    proto.access(OTHER, addr_homed_at(cfg, HOME), True, 0)
    line = proto.l1s[OTHER].peek(block)
    proto.l1s[OTHER].invalidate(block)
    proto._evict_l1_line(OTHER, block, line, 2500)
    entry = proto.l2s[HOME].peek(block)
    assert entry is not None and entry.has_data and entry.dirty
    assert entry.version == proto.checker.current_version(block)
    # re-read is served by the home in 2 hops
    r = proto.access(3, addr_homed_at(cfg, HOME), False, 5000)
    assert r.category == "unpredicted_home"


def test_clean_exclusive_eviction_is_control_only(proto):
    cfg = proto.config
    block = block_homed_at(cfg, HOME)
    proto.access(OTHER, addr_homed_at(cfg, HOME), False, 0)  # E, clean
    flits_before = proto.network.stats.flit_link_traversals
    line = proto.l1s[OTHER].invalidate(block)
    proto._evict_l1_line(OTHER, block, line, 2500)
    flits = proto.network.stats.flit_link_traversals - flits_before
    # one 1-flit control message only (the L2 already has the data)
    assert flits == proto.mesh.hops(OTHER, HOME)
    entry = proto.l2s[HOME].peek(block)
    assert entry.has_data and entry.owner_tile is None


def test_capacity_evictions_keep_coherence(proto):
    """Fill one L1 set beyond capacity and check the invariants."""
    cfg = proto.config
    tile = 2
    blocks = [block_homed_at(cfg, HOME, n) for n in range(8)]
    for i, b in enumerate(blocks):
        proto.access(tile, b << 6, i % 3 == 0, i * 1000)
    for b in blocks:
        proto.check_block(b)


def test_stats_classification_totals(proto):
    addr = addr_homed_at(proto.config, HOME)
    proto.access(1, addr, False, 0)
    proto.access(2, addr, False, 2500)
    proto.access(1, addr, False, 5000)  # hit
    st = proto.stats
    assert st.operations == 3
    assert st.l1_hits == 1
    assert st.l1_misses == 2
    assert sum(st.miss_categories.values()) == 2
