"""Conformance of DiCo-Providers against the paper's Tables I and II.

Each test constructs the exact situation of one table row on a small
chip and asserts the implementation takes the mandated action, looked
up from the machine-readable transcription in
:mod:`repro.core.protocols.reference`.
"""

import pytest

from repro.core.protocols.providers import DiCoProvidersProtocol
from repro.core.protocols.reference import (
    TABLE_I,
    TABLE_II,
    lookup_table_i,
    lookup_table_ii,
)
from repro.core.states import L1State

from ..conftest import addr_homed_at, block_homed_at, tiny_chip

HOME = 5


@pytest.fixture
def proto() -> DiCoProvidersProtocol:
    return DiCoProvidersProtocol(tiny_chip(), seed=0)


def settle(proto, tile, addr, is_write, now):
    r = proto.access(tile, addr, is_write, now)
    while r.needs_retry:
        now = r.retry_at
        r = proto.access(tile, addr, is_write, now)
    return r, now + max(1, r.latency) + 100


def test_tables_cover_both_request_kinds():
    assert {r.request for r in TABLE_I} == {"read", "write"}
    assert {r.receiver for r in TABLE_I} == {"L1", "L2"}
    assert {r.state for r in TABLE_II} == {"shared", "provider", "owner"}


def test_lookup_rejects_unknown_situations():
    with pytest.raises(KeyError):
        lookup_table_i("read", "L1", "exclusive")
    with pytest.raises(KeyError):
        lookup_table_ii("invalid", None)


class TestTableIConformance:
    def test_read_owner_local(self, proto):
        row = lookup_table_i("read", "L1", "owner", from_local_area=True)
        assert row.action == "supply_add_sharer"
        block = block_homed_at(proto.config, HOME)
        addr = addr_homed_at(proto.config, HOME)
        _, t = settle(proto, 0, addr, False, 0)       # owner, area 0
        settle(proto, 1, addr, False, t)              # local read
        owner = proto.l1s[0].peek(block)
        assert owner.sharers & (1 << 1)               # bit-vector insert
        assert proto.l1s[1].peek(block).state is L1State.S

    def test_read_owner_remote_no_provider(self, proto):
        row = lookup_table_i(
            "read", "L1", "owner", from_local_area=False, provider_exists=False
        )
        assert row.action == "supply_make_provider"
        block = block_homed_at(proto.config, HOME)
        addr = addr_homed_at(proto.config, HOME)
        _, t = settle(proto, 0, addr, False, 0)
        settle(proto, 10, addr, False, t)             # remote area
        owner = proto.l1s[0].peek(block)
        area = proto.areas.area_of(10)
        assert owner.propos[area] == 10               # ProPo insert
        assert proto.l1s[10].peek(block).state is L1State.P

    def test_read_owner_remote_with_provider(self, proto):
        row = lookup_table_i(
            "read", "L1", "owner", from_local_area=False, provider_exists=True
        )
        assert row.action == "forward_to_provider"
        block = block_homed_at(proto.config, HOME)
        addr = addr_homed_at(proto.config, HOME)
        _, t = settle(proto, 0, addr, False, 0)
        _, t = settle(proto, 10, addr, False, t)      # provider of area 3
        settle(proto, 11, addr, False, t)             # same remote area
        provider = proto.l1s[10].peek(block)
        assert provider.sharers & (1 << 11)           # served by provider
        assert proto.l1s[11].peek(block).state is L1State.S

    def test_read_provider_remote_forwards_home(self, proto):
        row = lookup_table_i("read", "L1", "provider", from_local_area=False)
        assert row.action == "forward_to_home"
        block = block_homed_at(proto.config, HOME)
        addr = addr_homed_at(proto.config, HOME)
        _, t = settle(proto, 0, addr, False, 0)
        _, t = settle(proto, 10, addr, False, t)      # provider, area 3
        # tile 2 (area 1) mispredicts the provider
        proto.l1cs[2].update(block, 10)
        r, _ = settle(proto, 2, addr, False, t)
        assert r.category == "pred_miss"              # bounced via home

    def test_read_l2_owner_no_provider_grants_ownership(self, proto):
        row = lookup_table_i("read", "L2", "owner", provider_exists=False)
        assert row.action == "supply_grant_ownership"
        block = block_homed_at(proto.config, HOME)
        addr = addr_homed_at(proto.config, HOME)
        _, t = settle(proto, 0, addr, False, 0)
        line = proto.l1s[0].invalidate(block)
        proto._evict_owner(0, block, line, t)         # home becomes owner
        _, t = settle(proto, 12, addr, False, t + 500)
        assert proto.l2cs[HOME].peek_owner(block) == 12

    def test_read_l2_no_owner_fetches_memory(self, proto):
        row = lookup_table_i("read", "L2", "other", owner_in_l1=False)
        assert row.action == "fetch_memory_grant_exclusive"
        addr = addr_homed_at(proto.config, HOME)
        r, _ = settle(proto, 3, addr, False, 0)
        assert r.category == "memory"
        block = block_homed_at(proto.config, HOME)
        assert proto.l1s[3].peek(block).state is L1State.E

    def test_write_at_owner_invalidates_and_changes_owner(self, proto):
        row = lookup_table_i("write", "L1", "owner")
        assert row.action == "invalidate_supply_change_owner"
        block = block_homed_at(proto.config, HOME)
        addr = addr_homed_at(proto.config, HOME)
        _, t = settle(proto, 0, addr, False, 0)
        _, t = settle(proto, 1, addr, False, t)
        before = proto.network.stats.by_type.get("Change_Owner", 0)
        _, t = settle(proto, 7, addr, True, t)
        assert proto.l1s[1].peek(block) is None       # invalidation ran
        assert proto.l1s[7].peek(block).state is L1State.M
        assert proto.network.stats.by_type["Change_Owner"] > before

    def test_write_at_l2_with_no_owner_fetches_memory(self, proto):
        row = lookup_table_i("write", "L2", "other", owner_in_l1=False)
        assert row.action == "fetch_memory_grant_modified"
        addr = addr_homed_at(proto.config, HOME)
        r, _ = settle(proto, 6, addr, True, 0)
        assert r.category == "memory"
        block = block_homed_at(proto.config, HOME)
        assert proto.l1s[6].peek(block).state is L1State.M


class TestTableIIConformance:
    def test_shared_row(self, proto):
        assert lookup_table_ii("shared", None).action == "silent"
        block = block_homed_at(proto.config, HOME)
        addr = addr_homed_at(proto.config, HOME)
        _, t = settle(proto, 0, addr, False, 0)
        _, t = settle(proto, 1, addr, False, t)
        msgs = proto.network.stats.messages
        line = proto.l1s[1].invalidate(block)
        proto._evict_l1_line(1, block, line, t)
        assert proto.network.stats.messages == msgs

    def test_provider_rows(self, proto):
        assert (
            lookup_table_ii("provider", True).action == "transfer_providership"
        )
        assert lookup_table_ii("provider", False).action == "notify_no_provider"
        block = block_homed_at(proto.config, HOME)
        addr = addr_homed_at(proto.config, HOME)
        _, t = settle(proto, 0, addr, False, 0)
        _, t = settle(proto, 10, addr, False, t)      # provider
        line = proto.l1s[10].invalidate(block)
        proto._evict_provider(10, block, line, t)
        assert proto.network.stats.by_type.get("No_Provider", 0) == 1

    def test_owner_rows(self, proto):
        assert lookup_table_ii("owner", True).action == "transfer_ownership"
        assert lookup_table_ii("owner", False).action == "ownership_to_home"
        block = block_homed_at(proto.config, HOME)
        addr = addr_homed_at(proto.config, HOME)
        _, t = settle(proto, 0, addr, False, 0)
        _, t = settle(proto, 1, addr, False, t)
        line = proto.l1s[0].invalidate(block)
        proto._evict_owner(0, block, line, t)
        # ownership went to the sharer, which notified the home
        assert proto.l2cs[HOME].peek_owner(block) == 1
        assert proto.network.stats.by_type["Change_Owner"] >= 1
