"""Behaviours specific to the directoryless shared-LLC protocol."""

import pytest

from repro.core.checker import CoherenceViolation
from repro.core.protocols.dls import SHARED
from repro.core.states import L1State
from repro.sim.chip import make_protocol
from repro.verify.mutations import make_mutated_factory

from ..conftest import addr_homed_at, block_homed_at, tiny_chip

HOME = 5


@pytest.fixture
def proto():
    return make_protocol("dls", tiny_chip(), seed=0)


def settle(proto, tile, addr, is_write, now):
    r = proto.access(tile, addr, is_write, now)
    while r.needs_retry:
        now = r.retry_at
        r = proto.access(tile, addr, is_write, now)
    return r, now + max(1, r.latency)


def test_first_touch_classifies_private(proto):
    addr = addr_homed_at(proto.config, HOME)
    block = block_homed_at(proto.config, HOME)
    settle(proto, 3, addr, False, 0)
    assert proto._class[block] == 3
    line = proto.l1s[3].peek(block)
    assert line is not None and line.state is L1State.E
    # inclusive LLC tracking entry names the one possible copy
    entry = proto.l2s[HOME].peek(block)
    assert entry is not None and entry.owner_tile == 3
    proto.audit_block(block)


def test_private_blocks_hit_locally(proto):
    addr = addr_homed_at(proto.config, HOME)
    _, t = settle(proto, 3, addr, True, 0)
    r, _ = settle(proto, 3, addr, False, t)
    assert r.l1_hit
    assert r.latency == proto.config.l1.access_latency


def test_second_toucher_demotes_to_shared(proto):
    addr = addr_homed_at(proto.config, HOME)
    block = block_homed_at(proto.config, HOME)
    _, t = settle(proto, 3, addr, True, 0)  # private dirty at 3
    settle(proto, 9, addr, False, t)  # second tile: demote
    assert proto._class[block] == SHARED
    # the owner's copy was folded back into the LLC...
    assert proto.l1s[3].peek(block) is None
    assert proto.stats.unicast_invalidations == 1
    entry = proto.l2s[HOME].peek(block)
    assert entry.is_owner and entry.owner_tile is None
    assert entry.version == 1 and entry.dirty
    # ...and the reader got data without filling its own L1
    assert proto.l1s[9].peek(block) is None
    proto.audit_block(block)


def test_shared_blocks_never_fill_l1(proto):
    addr = addr_homed_at(proto.config, HOME)
    block = block_homed_at(proto.config, HOME)
    t = 0
    for tile in range(proto.config.n_tiles):
        _, t = settle(proto, tile, addr, False, t)
    assert all(l1.peek(block) is None for l1 in proto.l1s)
    proto.audit_block(block)


def test_shared_write_commits_at_the_llc(proto):
    addr = addr_homed_at(proto.config, HOME)
    block = block_homed_at(proto.config, HOME)
    _, t = settle(proto, 1, addr, False, 0)
    _, t = settle(proto, 2, addr, False, t)  # demoted
    _, t = settle(proto, 7, addr, True, t)
    entry = proto.l2s[HOME].peek(block)
    assert entry.version == 1 and entry.dirty
    assert proto.checker.current_version(block) == 1
    assert proto.l1s[7].peek(block) is None
    proto.audit_block(block)


def test_shared_blocks_pay_the_remote_round_trip(proto):
    """The DLS trade: shared data loses L1 locality — every access is
    a home-bank round trip, never an L1 hit."""
    addr = addr_homed_at(proto.config, HOME)
    _, t = settle(proto, 1, addr, False, 0)
    _, t = settle(proto, 2, addr, False, t)
    r, _ = settle(proto, 2, addr, False, t)
    assert not r.l1_hit
    assert r.latency > proto.config.l1.access_latency


def test_private_l1_eviction_folds_into_llc(proto):
    addr = addr_homed_at(proto.config, HOME)
    block = block_homed_at(proto.config, HOME)
    settle(proto, 3, addr, True, 0)
    line = proto.l1s[3].peek(block)
    proto.l1s[3].invalidate(block)
    proto._evict_l1_line(3, block, line, 100)
    entry = proto.l2s[HOME].peek(block)
    assert entry.version == 1 and entry.dirty
    assert entry.owner_tile is None
    # classification survives: the block stays bound to tile 3
    assert proto._class[block] == 3
    proto.audit_block(block)


def test_llc_eviction_enforces_inclusion(proto):
    addr = addr_homed_at(proto.config, HOME)
    block = block_homed_at(proto.config, HOME)
    settle(proto, 3, addr, True, 0)
    entry = proto.l2s[HOME].peek(block)
    proto.l2s[HOME].invalidate(block)
    proto._evict_l2_entry(HOME, block, entry, 100)
    # the private owner's L1 copy cannot outlive the tracking entry
    assert proto.l1s[3].peek(block) is None
    assert proto.mem_version(block) == 1  # dirty data reached memory
    proto.audit_block(block)


def test_audit_catches_stale_demotion():
    """A demotion that leaves the old owner's L1 copy alive must fail
    the LLC-inclusion audit."""
    factory = make_mutated_factory("dls-stale-demotion")
    proto = factory("dls", tiny_chip(), seed=0)
    addr = addr_homed_at(proto.config, HOME)
    block = block_homed_at(proto.config, HOME)
    _, t = settle(proto, 3, addr, True, 0)
    with pytest.raises(CoherenceViolation):
        # mutated: the fold-back skips the invalidation
        _, t = settle(proto, 9, addr, False, t)
        proto.audit_block(block)
