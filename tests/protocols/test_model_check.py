"""Bounded model checking of the coherence protocols.

Exhaustively enumerates *every* sequence of up to DEPTH operations
drawn from a small alphabet (a few tiles × read/write × one or two
blocks) and asserts the coherence invariants after every step, for all
four protocols.  Unlike the randomized hypothesis suite this covers the
complete space up to the bound, so any reachable invariant violation
within it is found deterministically.

The alphabet is chosen to cross area boundaries (tiles 0/1 share an
area; 10 is remote) and to include the home tile itself, exercising
ownership transfer, provider creation/dissolution and invalidation
trees.
"""

import itertools

import pytest

from repro.sim.chip import PROTOCOLS, make_protocol

from ..conftest import tiny_chip

# tiles 0 and 1 share area 0; tile 10 is in area 3; tile 5 is the home
TILES = (0, 1, 10, 5)
BLOCK = 5  # homed at tile 5 on the 4x4 chip
DEPTH = 4

ALPHABET = [
    (tile, is_write) for tile in TILES for is_write in (False, True)
]


def run_sequence(protocol_name: str, seq) -> None:
    proto = make_protocol(protocol_name, tiny_chip(), seed=0)
    now = 0
    for tile, is_write in seq:
        r = proto.access(tile, BLOCK << 6, is_write, now)
        while r.needs_retry:
            now = r.retry_at
            r = proto.access(tile, BLOCK << 6, is_write, now)
        now += max(1, r.latency) + 1
        proto.check_block(BLOCK)


@pytest.mark.parametrize("protocol", sorted(PROTOCOLS))
def test_exhaustive_depth_3(protocol):
    """All |alphabet|^3 = 512 sequences of three operations."""
    for seq in itertools.product(ALPHABET, repeat=3):
        run_sequence(protocol, seq)


@pytest.mark.parametrize("protocol", sorted(PROTOCOLS))
def test_exhaustive_depth_4_reads_heavy(protocol):
    """Depth-4 sequences with at most one write (the read-sharing and
    provider-creation space, exhaustively)."""
    reads = [(t, False) for t in TILES]
    writes = [(t, True) for t in TILES]
    count = 0
    for seq in itertools.product(ALPHABET, repeat=DEPTH):
        n_writes = sum(1 for _, w in seq if w)
        if n_writes > 1:
            continue
        run_sequence(protocol, seq)
        count += 1
    assert count == 4**4 + 4 * 4**3 * 4  # pure reads + 1-write placements


@pytest.mark.parametrize("protocol", sorted(PROTOCOLS))
def test_exhaustive_write_pairs_after_sharing(protocol):
    """Every (reader set, writer, second writer) combination: builds a
    sharing tree exhaustively, then tears it down twice."""
    for readers in itertools.chain.from_iterable(
        itertools.combinations(TILES, k) for k in range(len(TILES) + 1)
    ):
        for w1, w2 in itertools.product(TILES, repeat=2):
            seq = [(r, False) for r in readers] + [(w1, True), (w2, True)]
            run_sequence(protocol, seq)
