"""Behaviours specific to the bus-snooping family (mesi/moesi-snoop)."""

import pytest

from repro.core.checker import CoherenceViolation
from repro.core.states import L1State
from repro.sim.chip import make_protocol
from repro.verify.mutations import make_mutated_factory

from ..conftest import addr_homed_at, block_homed_at, tiny_chip

HOME = 5


@pytest.fixture(params=["mesi-snoop", "moesi-snoop"])
def proto(request):
    return make_protocol(request.param, tiny_chip(), seed=0)


def settle(proto, tile, addr, is_write, now):
    r = proto.access(tile, addr, is_write, now)
    while r.needs_retry:
        now = r.retry_at
        r = proto.access(tile, addr, is_write, now)
    return r, now + max(1, r.latency)


def test_sole_reader_fills_exclusive(proto):
    addr = addr_homed_at(proto.config, HOME)
    block = block_homed_at(proto.config, HOME)
    settle(proto, 3, addr, False, 0)
    line = proto.l1s[3].peek(block)
    assert line is not None and line.state is L1State.E
    proto.audit_block(block)


def test_second_reader_downgrades_owner_to_s_or_o(proto):
    addr = addr_homed_at(proto.config, HOME)
    block = block_homed_at(proto.config, HOME)
    _, t = settle(proto, 3, addr, True, 0)  # dirty M owner
    settle(proto, 9, addr, False, t)
    owner_line = proto.l1s[3].peek(block)
    if proto.name == "moesi-snoop":
        # MOESI keeps the dirty data on chip: M -> O, memory untouched
        assert owner_line.state is L1State.O
        assert proto.mem_version(block) == 0
    else:
        # MESI has no O: the owner drops to S and memory snarfs the data
        assert owner_line.state is L1State.S
        assert proto.mem_version(block) == 1
    assert proto.l1s[9].peek(block).state is L1State.S
    proto.audit_block(block)


def test_getx_invalidates_every_snooped_copy(proto):
    addr = addr_homed_at(proto.config, HOME)
    block = block_homed_at(proto.config, HOME)
    t = 0
    for tile in (1, 4, 7, 11):
        _, t = settle(proto, tile, addr, False, t)
    settle(proto, 2, addr, True, t)
    copies = proto._l1_copies(block)
    assert [tile for tile, _ in copies] == [2]
    assert copies[0][1].state is L1State.M
    assert proto.stats.broadcast_invalidations >= 1
    proto.audit_block(block)


def test_every_miss_is_a_bus_transaction(proto):
    addr = addr_homed_at(proto.config, HOME)
    _, t = settle(proto, 1, addr, False, 0)
    _, t = settle(proto, 6, addr, True, t)
    st = proto.bus.stats
    assert st.bus_transactions == 2
    assert st.broadcasts == st.messages > 0
    # every bus flit is seen by every snooper
    assert st.bus_flit_traversals == (
        sum(st.flits_by_type.values()) * proto.config.n_tiles
    )
    assert st.bus_busy_cycles > 0


def test_snoop_probes_charge_every_other_tag_array(proto):
    addr = addr_homed_at(proto.config, HOME)
    settle(proto, 0, addr, False, 0)
    probed = sum(proto.l1s[t].stats.tag_reads for t in range(1, 16))
    assert probed >= proto.config.n_tiles - 1


def test_bus_serialization_back_to_back(proto):
    """Two misses contend for the bus: the second one's grant waits."""
    a1 = addr_homed_at(proto.config, HOME)
    a2 = addr_homed_at(proto.config, 9)
    proto.access(1, a1, False, 0)
    proto.access(2, a2, False, 0)
    assert proto.bus.stats.bus_wait_cycles > 0


def test_dirty_owner_eviction_writes_back(proto):
    addr = addr_homed_at(proto.config, HOME)
    block = block_homed_at(proto.config, HOME)
    settle(proto, 4, addr, True, 0)
    line = proto.l1s[4].peek(block)
    proto.l1s[4].invalidate(block)
    proto._evict_l1_line(4, block, line, 100)
    assert proto.mem_version(block) == 1
    assert proto.stats.writebacks == 1
    proto.audit_block(block)


def test_l2_banks_stay_empty(proto):
    t = 0
    for home in (0, 5, 11):
        addr = addr_homed_at(proto.config, home)
        _, t = settle(proto, home + 1, addr, False, t)
        _, t = settle(proto, home + 2, addr, True, t)
    assert all(len(l2) == 0 for l2 in proto.l2s)


def test_moesi_o_eviction_writes_back():
    proto = make_protocol("moesi-snoop", tiny_chip(), seed=0)
    addr = addr_homed_at(proto.config, HOME)
    block = block_homed_at(proto.config, HOME)
    _, t = settle(proto, 3, addr, True, 0)
    _, t = settle(proto, 9, addr, False, t)  # M -> O at tile 3
    assert proto.mem_version(block) == 0  # no write-back yet
    line = proto.l1s[3].peek(block)
    assert line.state is L1State.O
    proto.l1s[3].invalidate(block)
    proto._evict_l1_line(3, block, line, 100)
    # the O line carried the only current data
    assert proto.mem_version(block) == 1
    proto.audit_block(block)


def test_audit_catches_lost_invalidate():
    """A GETX that skips one snooped S copy must fail the snoop audit."""
    factory = make_mutated_factory("mesi-snoop-lost-invalidate")
    proto = factory("mesi-snoop", tiny_chip(), seed=0)
    addr = addr_homed_at(proto.config, HOME)
    block = block_homed_at(proto.config, HOME)
    _, t = settle(proto, 1, addr, False, 0)
    _, t = settle(proto, 6, addr, False, t)  # two ownerless S copies
    with pytest.raises(CoherenceViolation):
        _, t = settle(proto, 12, addr, True, t)  # drops one S copy, not both
        proto.audit_block(block)


def test_audit_catches_silent_owner_upgrade():
    """An O owner upgrading without invalidating its sharers must fail."""
    factory = make_mutated_factory("moesi-snoop-silent-owner")
    proto = factory("moesi-snoop", tiny_chip(), seed=0)
    addr = addr_homed_at(proto.config, HOME)
    block = block_homed_at(proto.config, HOME)
    _, t = settle(proto, 3, addr, True, 0)  # M at tile 3
    _, t = settle(proto, 9, addr, False, t)  # 3: M -> O, 9: S
    with pytest.raises(CoherenceViolation):
        # mutated: the upgrade goes silent, leaving 9's stale S copy
        _, t = settle(proto, 3, addr, True, t)
        proto.audit_block(block)
