"""Scenario tests for the original DiCo protocol (Sec. II-B)."""

import pytest

from repro.core.protocols.dico import DiCoProtocol
from repro.core.states import L1State

from ..conftest import addr_homed_at, block_homed_at, tiny_chip


@pytest.fixture
def proto() -> DiCoProtocol:
    return DiCoProtocol(tiny_chip(), seed=0)


HOME = 5


def test_cold_read_makes_requestor_owner(proto):
    block = block_homed_at(proto.config, HOME)
    r = proto.access(1, addr_homed_at(proto.config, HOME), False, 0)
    assert r.category == "memory"
    assert proto.l1s[1].peek(block).state is L1State.E
    # the home's L2C$ records the precise owner
    assert proto.l2cs[HOME].peek_owner(block) == 1
    # and keeps a stale-safe plain copy of the data
    entry = proto.l2s[HOME].peek(block)
    assert entry is not None and entry.plain_copy


def test_second_read_forwards_to_owner(proto):
    cfg = proto.config
    block = block_homed_at(cfg, HOME)
    proto.access(1, addr_homed_at(cfg, HOME), False, 0)
    r = proto.access(2, addr_homed_at(cfg, HOME), False, 2500)
    assert r.category == "unpredicted_fwd"
    owner = proto.l1s[1].peek(block)
    assert owner.state is L1State.O  # E -> O with a sharer
    assert owner.sharers & (1 << 2)
    assert proto.l1s[2].peek(block).state is L1State.S


def test_repeat_miss_resolves_in_two_hops_via_prediction(proto):
    """The headline DiCo behaviour: L1C$ prediction avoids indirection."""
    cfg = proto.config
    block = block_homed_at(cfg, HOME)
    addr = addr_homed_at(cfg, HOME)
    proto.access(1, addr, False, 0)     # tile 1 owner
    proto.access(2, addr, False, 1250)    # tile 2 sharer, learns supplier=1
    # force tile 2 to lose its copy but keep the prediction
    proto.drop_l1(2, block)
    r = proto.access(2, addr, False, 2500)
    assert r.category == "pred_owner_hit"
    # two-hop latency: request leg + supplier access + data leg
    expected_legs = 2 * proto.mesh.hops(2, 1)
    assert proto.stats.miss_links.maximum <= 2 * proto.mesh.hops(2, 1) + \
        2 * proto.mesh.hops(2, HOME) + 2 * proto.mesh.hops(HOME, 1)


def test_write_invalidates_through_owner(proto):
    cfg = proto.config
    block = block_homed_at(cfg, HOME)
    addr = addr_homed_at(cfg, HOME)
    proto.access(1, addr, False, 0)
    proto.access(2, addr, False, 1250)
    proto.access(3, addr, False, 2500)
    r = proto.access(7, addr, True, 5000)
    assert not r.needs_retry
    for t in (1, 2, 3):
        assert proto.l1s[t].peek(block) is None
    new_owner = proto.l1s[7].peek(block)
    assert new_owner.state is L1State.M
    assert proto.l2cs[HOME].peek_owner(block) == 7
    proto.check_block(block)


def test_change_owner_goes_through_home(proto):
    cfg = proto.config
    addr = addr_homed_at(cfg, HOME)
    proto.access(1, addr, False, 0)
    before = dict(proto.network.stats.by_type)
    proto.access(2, addr, True, 2500)
    after = proto.network.stats.by_type
    assert after["Change_Owner"] > before.get("Change_Owner", 0)
    assert after["Change_Owner_Ack"] > before.get("Change_Owner_Ack", 0)


def test_invalidation_hints_update_predictions(proto):
    """Fig. 5: an invalidation carries the new owner's identity."""
    cfg = proto.config
    block = block_homed_at(cfg, HOME)
    addr = addr_homed_at(cfg, HOME)
    proto.access(1, addr, False, 0)
    proto.access(2, addr, False, 1250)   # 2 is a sharer
    proto.access(3, addr, True, 2500)   # 3 writes; 2 invalidated with hint
    assert proto.l1cs[2].peek(block) == 3
    # the re-read goes straight to the new owner
    r = proto.access(2, addr, False, 5000)
    assert r.category == "pred_owner_hit"


def test_misprediction_falls_back_to_home(proto):
    cfg = proto.config
    block = block_homed_at(cfg, HOME)
    addr = addr_homed_at(cfg, HOME)
    proto.access(1, addr, False, 0)
    proto.access(2, addr, False, 1250)
    proto.drop_l1(2, block)
    # sabotage the prediction: point it at a tile with nothing
    proto.l1cs[2].update(block, 14)
    r = proto.access(2, addr, False, 2500)
    assert r.category == "pred_miss"
    assert proto.l1s[2].peek(block).state is L1State.S  # still resolved


def test_owner_eviction_transfers_to_sharer(proto):
    """Table II: ownership + sharing code go to a sharer."""
    cfg = proto.config
    block = block_homed_at(cfg, HOME)
    addr = addr_homed_at(cfg, HOME)
    proto.access(1, addr, False, 0)
    proto.access(2, addr, False, 1250)
    line = proto.l1s[1].invalidate(block)
    proto._evict_l1_line(1, block, line, 2500)
    new_owner = proto.l1s[2].peek(block)
    assert new_owner.state is L1State.O
    assert proto.l2cs[HOME].peek_owner(block) == 2
    proto.check_block(block)


def test_owner_eviction_without_sharers_goes_home(proto):
    cfg = proto.config
    block = block_homed_at(cfg, HOME)
    addr = addr_homed_at(cfg, HOME)
    proto.access(1, addr, True, 0)  # dirty owner
    line = proto.l1s[1].invalidate(block)
    proto._evict_l1_line(1, block, line, 2500)
    entry = proto.l2s[HOME].peek(block)
    assert entry is not None and entry.is_owner and entry.has_data
    assert entry.dirty
    assert proto.l2cs[HOME].peek_owner(block) is None
    # the next reader receives the ownership from the home
    r = proto.access(3, addr, False, 5000)
    assert r.category == "unpredicted_home"
    assert proto.l1s[3].peek(block).state is L1State.M  # dirty ownership


def test_clean_owner_eviction_reuses_home_copy(proto):
    """The home still holds the fetch-time plain copy: control PUT."""
    cfg = proto.config
    block = block_homed_at(cfg, HOME)
    addr = addr_homed_at(cfg, HOME)
    proto.access(1, addr, False, 0)  # E clean; home has plain copy
    flits_before = proto.network.stats.flit_link_traversals
    line = proto.l1s[1].invalidate(block)
    proto._evict_l1_line(1, block, line, 2500)
    flits = proto.network.stats.flit_link_traversals - flits_before
    assert flits == proto.mesh.hops(1, HOME)  # one control flit
    entry = proto.l2s[HOME].peek(block)
    assert entry.is_owner and entry.has_data and not entry.plain_copy


def test_forced_relinquish_on_l2c_pressure():
    """Sec. IV-A1: evicting an L2C$ pointer forces the owner to hand
    the ownership back to the home."""
    from dataclasses import replace

    cfg = replace(tiny_chip(), l2c_entries=16)
    proto = DiCoProtocol(cfg, seed=0)
    home = 5
    # occupy many L2C$ entries of one home bank with distinct owners
    n = cfg.l2c_entries + 8
    victims = 0
    for i in range(n):
        block = block_homed_at(cfg, home, i)
        proto.access(i % cfg.n_tiles, block << 6, False, i * 1000)
    assert proto.l2cs[home].forced_relinquishes > 0
    # every relinquished block is now home-owned and still coherent
    for i in range(n):
        proto.check_block(block_homed_at(cfg, home, i))


def test_upgrade_by_owner_with_sharers(proto):
    cfg = proto.config
    block = block_homed_at(cfg, HOME)
    addr = addr_homed_at(cfg, HOME)
    proto.access(1, addr, False, 0)   # owner
    proto.access(2, addr, False, 1250)  # sharer
    r = proto.access(1, addr, True, 2500)  # owner upgrades: invalidate 2
    assert not r.l1_hit
    assert proto.l1s[2].peek(block) is None
    assert proto.l1s[1].peek(block).state is L1State.M
    proto.check_block(block)
