"""Behaviours every protocol must share, run against all four."""

import pytest

from repro.core.states import L1State
from repro.sim.chip import PROTOCOLS, make_protocol

from ..conftest import addr_homed_at, block_homed_at, tiny_chip


@pytest.fixture(params=sorted(PROTOCOLS))
def proto(request):
    return make_protocol(request.param, tiny_chip(), seed=0)


HOME = 5


def settle(proto, tile, addr, is_write, now):
    r = proto.access(tile, addr, is_write, now)
    while r.needs_retry:
        now = r.retry_at
        r = proto.access(tile, addr, is_write, now)
    return r, now + max(1, r.latency)


def test_read_then_hit(proto):
    addr = addr_homed_at(proto.config, HOME)
    r, t = settle(proto, 1, addr, False, 0)
    assert not r.l1_hit
    r2, _ = settle(proto, 1, addr, False, t)
    assert r2.l1_hit
    assert r2.latency == proto.config.l1.access_latency


def test_write_read_same_tile(proto):
    addr = addr_homed_at(proto.config, HOME)
    block = block_homed_at(proto.config, HOME)
    _, t = settle(proto, 2, addr, True, 0)
    r, _ = settle(proto, 2, addr, False, t)
    assert r.l1_hit
    assert proto.checker.current_version(block) == 1


def test_write_propagates_to_other_tile(proto):
    """The fundamental test: a reader always sees the latest write."""
    addr = addr_homed_at(proto.config, HOME)
    block = block_homed_at(proto.config, HOME)
    t = 0
    for i, writer in enumerate((1, 7, 12)):
        _, t = settle(proto, writer, addr, True, t)
        reader = (writer + 3) % proto.config.n_tiles
        r, t = settle(proto, reader, addr, False, t)
        # check_read inside access() would have raised on staleness
        proto.check_block(block)
    assert proto.checker.current_version(block) == 3


def test_ping_pong_writes(proto):
    addr = addr_homed_at(proto.config, HOME)
    block = block_homed_at(proto.config, HOME)
    t = 0
    for i in range(10):
        writer = (3, 13)[i % 2]
        _, t = settle(proto, writer, addr, True, t)
        proto.check_block(block)
    assert proto.checker.current_version(block) == 10


def test_read_sharing_scales_to_all_tiles(proto):
    addr = addr_homed_at(proto.config, HOME)
    block = block_homed_at(proto.config, HOME)
    t = 0
    for tile in range(proto.config.n_tiles):
        _, t = settle(proto, tile, addr, False, t)
    copies = proto.live_copies(block)
    if proto.name == "dls":
        # DLS never caches shared blocks in L1; the home LLC entry is
        # the single live copy however many tiles read the block
        assert len(copies) == 1 and copies[0][1] == "L2_OWNER"
    else:
        assert len(copies) >= proto.config.n_tiles  # every L1 holds it
    proto.check_block(block)
    # one write tears all of it down
    _, t = settle(proto, 0, addr, True, t)
    copies = [c for c in proto.live_copies(block) if c[0].startswith("L1")]
    if proto.name == "dls":
        assert copies == []  # the write committed at the LLC, not an L1
    else:
        assert len(copies) == 1
    proto.check_block(block)


def test_write_after_read_everywhere_version(proto):
    addr = addr_homed_at(proto.config, HOME)
    block = block_homed_at(proto.config, HOME)
    t = 0
    for tile in (0, 2, 8, 10):  # one tile per area on the 4x4 chip
        _, t = settle(proto, tile, addr, False, t)
    _, t = settle(proto, 15, addr, True, t)
    for tile in (0, 2, 8, 10):
        r, t = settle(proto, tile, addr, False, t)
    proto.check_block(block)
    assert proto.checker.current_version(block) == 1


def test_self_homed_access(proto):
    """Accesses from the home tile itself (zero-hop messages)."""
    addr = addr_homed_at(proto.config, HOME)
    r, t = settle(proto, HOME, addr, False, 0)
    assert r.latency > 0  # still pays memory latency
    r2, _ = settle(proto, HOME, addr, True, t)
    proto.check_block(block_homed_at(proto.config, HOME))


def test_many_blocks_interleaved(proto):
    cfg = proto.config
    t = 0
    blocks = [block_homed_at(cfg, h, n) for h in (0, 5, 11) for n in range(3)]
    for i, block in enumerate(blocks * 3):
        tile = (i * 7) % cfg.n_tiles
        _, t = settle(proto, tile, block << 6, i % 4 == 0, t)
    for block in blocks:
        proto.check_block(block)


def test_miss_latency_statistics_populated(proto):
    addr = addr_homed_at(proto.config, HOME)
    settle(proto, 1, addr, False, 0)
    st = proto.stats
    assert st.miss_latency.count == 1
    assert st.miss_latency.mean > 0
    assert st.miss_links.count == 1


def test_finalize_stats_aggregates_structures(proto):
    addr = addr_homed_at(proto.config, HOME)
    settle(proto, 1, addr, False, 0)
    stats = proto.finalize_stats(cycles=1000)
    assert stats.cycles == 1000
    assert stats.structure("l1").tag_reads > 0
    assert stats.network.messages > 0


def test_reset_stats_preserves_cache_contents(proto):
    addr = addr_homed_at(proto.config, HOME)
    block = block_homed_at(proto.config, HOME)
    _, t = settle(proto, 1, addr, False, 0)
    proto.reset_stats()
    assert proto.stats.operations == 0
    assert proto.network.stats.messages == 0
    # the block is still cached: next access is a hit
    r, _ = settle(proto, 1, addr, False, t)
    assert r.l1_hit
