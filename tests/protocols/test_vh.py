"""Tests for the Virtual Hierarchies comparator (Sec. II related work)."""

import pytest

from repro.core.protocols.vh import VirtualHierarchyProtocol, vh_storage_breakdown
from repro.core.states import L1State
from repro.core.storage import storage_breakdown
from repro.sim.config import DEFAULT_CHIP

from ..conftest import addr_homed_at, block_homed_at, tiny_chip


@pytest.fixture
def proto() -> VirtualHierarchyProtocol:
    return VirtualHierarchyProtocol(tiny_chip(), seed=0)


HOME = 5  # global home tile; domain 0 on the 4x4 chip


def settle(proto, tile, addr, is_write, now):
    r = proto.access(tile, addr, is_write, now)
    while r.needs_retry:
        now = r.retry_at
        r = proto.access(tile, addr, is_write, now)
    return r, now + max(1, r.latency) + 100


def test_first_read_installs_domain_copy(proto):
    block = block_homed_at(proto.config, HOME)
    addr = addr_homed_at(proto.config, HOME)
    r, _ = settle(proto, 0, addr, False, 0)
    assert r.category == "memory"
    domain = proto.domain_of(0)
    h1 = proto.dynamic_home(block, domain)
    entry = proto.l2s[h1].peek(block)
    assert entry is not None and entry.has_data
    assert entry.sharers & (1 << 0)
    # level-2 directory knows the domain
    info = proto.l2dirs[HOME].peek(block)
    assert info is not None and info.sharers & (1 << domain)


def test_second_domain_read_reduplicates(proto):
    """The paper's critique: a block shared by two domains gets TWO
    domain copies at two dynamic homes."""
    block = block_homed_at(proto.config, HOME)
    addr = addr_homed_at(proto.config, HOME)
    _, t = settle(proto, 0, addr, False, 0)       # domain 0
    settle(proto, 10, addr, False, t)             # domain 3
    copies = 0
    for d in range(proto.config.n_areas):
        entry = proto.l2s[proto.dynamic_home(block, d)].peek(block)
        if entry is not None and entry.has_data:
            copies += 1
    assert copies == 2  # reduplicated
    proto.check_block(block)


def test_intra_domain_read_stays_in_domain(proto):
    block = block_homed_at(proto.config, HOME)
    addr = addr_homed_at(proto.config, HOME)
    _, t = settle(proto, 0, addr, False, 0)
    r, _ = settle(proto, 1, addr, False, t)       # same domain
    assert r.category == "unpredicted_home"       # level-1 hit
    domain = proto.domain_of(1)
    entry = proto.l2s[proto.dynamic_home(block, domain)].peek(block)
    assert entry.sharers & (1 << 1)


def test_write_invalidates_all_domains(proto):
    block = block_homed_at(proto.config, HOME)
    addr = addr_homed_at(proto.config, HOME)
    t = 0
    for reader in (0, 1, 10, 12):                 # three domains
        _, t = settle(proto, reader, addr, False, t)
    _, t = settle(proto, 2, addr, True, t)        # domain 1 writes
    for reader in (0, 1, 10, 12):
        assert proto.l1s[reader].peek(block) is None
    assert proto.l1s[2].peek(block).state is L1State.M
    proto.check_block(block)
    # only the writer's domain survives at level 2
    info = proto.l2dirs[HOME].peek(block)
    assert info.sharers == 1 << proto.domain_of(2)


def test_owner_downgrade_on_domain_read(proto):
    block = block_homed_at(proto.config, HOME)
    addr = addr_homed_at(proto.config, HOME)
    _, t = settle(proto, 0, addr, True, 0)        # owner in domain 0
    r, _ = settle(proto, 1, addr, False, t)       # same-domain read
    assert proto.l1s[0].peek(block).state is L1State.S
    assert proto.l1s[1].peek(block).state is L1State.S
    proto.check_block(block)


def test_cross_domain_read_pulls_through_remote_owner(proto):
    block = block_homed_at(proto.config, HOME)
    addr = addr_homed_at(proto.config, HOME)
    _, t = settle(proto, 0, addr, True, 0)        # M in domain 0
    r, _ = settle(proto, 10, addr, False, t)      # domain 3 reads
    assert proto.l1s[0].peek(block).state is L1State.S
    assert proto.l1s[10].peek(block).state is L1State.S
    proto.check_block(block)


def test_ping_pong_writes_across_domains(proto):
    block = block_homed_at(proto.config, HOME)
    addr = addr_homed_at(proto.config, HOME)
    t = 0
    for i in range(6):
        writer = (0, 10)[i % 2]
        _, t = settle(proto, writer, addr, True, t)
        proto.check_block(block)
    assert proto.checker.current_version(block) == 6


def test_owner_eviction_refreshes_domain_copy(proto):
    block = block_homed_at(proto.config, HOME)
    addr = addr_homed_at(proto.config, HOME)
    _, t = settle(proto, 0, addr, True, 0)
    line = proto.l1s[0].invalidate(block)
    proto._evict_l1_line(0, block, line, t)
    h1 = proto.dynamic_home(block, proto.domain_of(0))
    entry = proto.l2s[h1].peek(block)
    assert entry.has_data and entry.dirty
    assert entry.version == proto.checker.current_version(block)


class TestVhStorage:
    def test_vh_needs_more_storage_than_flat_directory(self):
        """Sec. II: 'VHs increase the overhead and power consumption of
        the cache coherence protocol due to the second level'."""
        vh = vh_storage_breakdown(DEFAULT_CHIP)
        flat = storage_breakdown("directory", DEFAULT_CHIP)
        assert vh.overhead > flat.overhead

    def test_vh_needs_far_more_than_the_area_protocols(self):
        vh = vh_storage_breakdown(DEFAULT_CHIP)
        for proto in ("dico-providers", "dico-arin"):
            assert vh.overhead > 2 * storage_breakdown(proto, DEFAULT_CHIP).overhead

    def test_vh_structures(self):
        vh = vh_storage_breakdown(DEFAULT_CHIP)
        names = {s.name for s in vh.coherence}
        assert names == {"l2_dir", "dir_cache"}
        # level-1 entry: 64-bit full map (dynamic domains!) + 6-bit GenPo
        assert vh.structure("l2_dir").entry_bits == 70
