"""Scenario tests for DiCo-Arin (Secs. III-B and IV-B)."""

import pytest

from repro.core.messages import MessageType
from repro.core.protocols.arin import DiCoArinProtocol
from repro.core.states import L1State

from ..conftest import addr_homed_at, block_homed_at, tiny_chip


@pytest.fixture
def proto() -> DiCoArinProtocol:
    return DiCoArinProtocol(tiny_chip(), seed=0)


HOME = 5  # area 0 on the 4x4 test chip


def test_intra_area_behaves_like_dico(proto):
    cfg = proto.config
    block = block_homed_at(cfg, HOME)
    addr = addr_homed_at(cfg, HOME)
    proto.access(0, addr, False, 0)
    proto.access(1, addr, False, 1250)  # same area
    owner = proto.l1s[0].peek(block)
    assert owner.state is L1State.O
    assert owner.sharers & (1 << 1)
    assert proto.l2cs[HOME].peek_owner(block) == 0


def test_remote_read_dissolves_ownership(proto):
    """Sec. III-B: the first remote-area read turns the owner into a
    provider and parks the data (and ordering) at the home L2."""
    cfg = proto.config
    block = block_homed_at(cfg, HOME)
    addr = addr_homed_at(cfg, HOME)
    proto.access(0, addr, False, 0)       # area-0 owner
    proto.access(10, addr, False, 1250)     # remote area read
    former = proto.l1s[0].peek(block)
    assert former.state is L1State.P
    assert proto.l2cs[HOME].peek_owner(block) is None
    entry = proto.l2s[HOME].peek(block)
    assert entry is not None and entry.inter_area and entry.has_data
    # both areas have a provider recorded
    assert entry.propos[proto.areas.area_of(0)] == 0
    assert entry.propos[proto.areas.area_of(10)] == 10
    assert proto.l1s[10].peek(block).state is L1State.P
    proto.check_block(block)


def test_provider_on_read_optimization_toggle():
    cfg = tiny_chip()
    on = DiCoArinProtocol(cfg, seed=0, provider_on_read=True)
    off = DiCoArinProtocol(cfg, seed=0, provider_on_read=False)
    for p in (on, off):
        block = block_homed_at(cfg, HOME)
        addr = addr_homed_at(cfg, HOME)
        p.access(0, addr, False, 0)
        p.access(10, addr, False, 1250)   # dissolve
        p.access(11, addr, False, 2500)  # served by home or provider
    assert on.l1s[11].peek(block_homed_at(cfg, HOME)).state is L1State.P
    # with the optimization off, a copy whose area already has a
    # provider is handed out as a plain sharer
    assert off.l1s[11].peek(block_homed_at(cfg, HOME)).state is L1State.S


def test_inter_area_reads_always_served_by_home_or_provider(proto):
    cfg = proto.config
    block = block_homed_at(cfg, HOME)
    addr = addr_homed_at(cfg, HOME)
    proto.access(0, addr, False, 0)
    proto.access(10, addr, False, 1250)
    r = proto.access(12, addr, False, 2500)  # third area
    assert r.category in (
        "unpredicted_home",
        "pred_provider_hit",
        "pred_owner_hit",
    )
    entry = proto.l2s[HOME].peek(block)
    assert entry.propos[proto.areas.area_of(12)] == 12
    proto.check_block(block)


def test_provider_serves_read_directly(proto):
    cfg = proto.config
    block = block_homed_at(cfg, HOME)
    addr = addr_homed_at(cfg, HOME)
    proto.access(0, addr, False, 0)
    proto.access(10, addr, False, 1250)   # dissolve; 10 provider (area 3)
    proto.access(11, addr, False, 2500)  # same area; learns a supplier
    proto.drop_l1(11, block)
    r = proto.access(11, addr, False, 5000)
    assert r.category == "pred_provider_hit"


def test_write_to_inter_area_block_uses_three_phase_broadcast(proto):
    """Sec. IV-B1: broadcast -> acks -> unblock broadcast."""
    cfg = proto.config
    block = block_homed_at(cfg, HOME)
    addr = addr_homed_at(cfg, HOME)
    proto.access(0, addr, False, 0)
    proto.access(10, addr, False, 1250)
    proto.access(12, addr, False, 2000)
    bcasts_before = proto.network.stats.broadcasts
    r = proto.access(3, addr, True, 5000)
    assert not r.needs_retry
    # two broadcasts: the invalidation and the unblock
    assert proto.network.stats.broadcasts == bcasts_before + 2
    assert proto.stats.broadcast_invalidations == 1
    # every tile acked: n_tiles - 1 control acks plus grant traffic
    assert proto.network.stats.by_type[MessageType.INV_ACK] >= cfg.n_tiles - 1
    for t in (0, 10, 12):
        assert proto.l1s[t].peek(block) is None
    writer = proto.l1s[3].peek(block)
    assert writer.state is L1State.M
    # the block is back in the intra-area regime, owned by the writer
    assert proto.l2cs[HOME].peek_owner(block) == 3
    proto.check_block(block)


def test_broadcast_never_used_to_locate_data(proto):
    """Sec. III-B: reads never broadcast; the home always has the data."""
    cfg = proto.config
    addr = addr_homed_at(cfg, HOME)
    proto.access(0, addr, False, 0)
    proto.access(10, addr, False, 1250)
    proto.access(11, addr, False, 2500)
    proto.access(12, addr, False, 3750)
    assert proto.network.stats.broadcasts == 0


def test_intra_area_write_uses_precise_invalidation(proto):
    cfg = proto.config
    block = block_homed_at(cfg, HOME)
    addr = addr_homed_at(cfg, HOME)
    proto.access(0, addr, False, 0)
    proto.access(1, addr, False, 1250)
    r = proto.access(4, addr, True, 2500)  # tile 4 is still area 0
    assert proto.network.stats.broadcasts == 0
    assert proto.l1s[0].peek(block) is None
    assert proto.l1s[1].peek(block) is None
    proto.check_block(block)


def test_l2_eviction_of_inter_area_block_broadcasts(proto):
    cfg = proto.config
    block = block_homed_at(cfg, HOME)
    addr = addr_homed_at(cfg, HOME)
    proto.access(0, addr, False, 0)
    proto.access(10, addr, False, 1250)
    entry = proto.l2s[HOME].peek(block)
    bcasts = proto.network.stats.broadcasts
    proto.l2s[HOME].invalidate(block)
    proto._evict_l2_entry(HOME, block, entry, 100)
    assert proto.network.stats.broadcasts == bcasts + 2
    assert proto.l1s[0].peek(block) is None
    assert proto.l1s[10].peek(block) is None


def test_provider_eviction_is_silent_and_self_heals(proto):
    """Stale home ProPos are replaced when a forwarded request arrives
    (Sec. IV-B)."""
    cfg = proto.config
    block = block_homed_at(cfg, HOME)
    addr = addr_homed_at(cfg, HOME)
    proto.access(0, addr, False, 0)
    proto.access(10, addr, False, 1250)   # provider of area 3
    proto.access(11, addr, False, 2500)  # knows provider 10
    msgs = proto.network.stats.messages
    line = proto.l1s[10].invalidate(block)
    proto._evict_l1_line(10, block, line, 3750)
    assert proto.network.stats.messages == msgs  # silent eviction
    # tile 11 re-misses, predicts the dead provider, forwarded to home
    proto.drop_l1(11, block)
    r = proto.access(11, addr, False, 5000)
    assert r.category == "pred_miss"
    entry = proto.l2s[HOME].peek(block)
    # the stale ProPo was healed: the requestor is the new provider
    assert entry.propos[proto.areas.area_of(11)] == 11


def test_owner_eviction_rows(proto):
    cfg = proto.config
    block = block_homed_at(cfg, HOME)
    addr = addr_homed_at(cfg, HOME)
    # with a live sharer: ownership moves within the area
    proto.access(0, addr, False, 0)
    proto.access(1, addr, False, 1250)
    line = proto.l1s[0].invalidate(block)
    proto._evict_owner(0, block, line, 2500)
    assert proto.l1s[1].peek(block).state is L1State.O
    assert proto.l2cs[HOME].peek_owner(block) == 1
    proto.check_block(block)


def test_home_owned_sharers_tracked_after_relinquish():
    """The nta-bit vector + area number at the home (Sec. V-B) covers
    exactly the forced-relinquish case."""
    cfg = tiny_chip()
    proto = DiCoArinProtocol(cfg, seed=0)
    home = 5
    block = block_homed_at(cfg, home, 0)
    addr = block << 6
    proto.access(0, addr, False, 0)
    proto.access(1, addr, False, 1250)  # sharer in area 0
    # force the relinquish directly
    proto._forced_relinquish(block, 0, 2500)
    proto.l2cs[home].clear(block)
    entry = proto.l2s[home].peek(block)
    assert entry.is_owner
    assert entry.owner_area == proto.areas.area_of(0)
    assert entry.sharers & (1 << 0) and entry.sharers & (1 << 1)
    # a remote read now converts the block to inter-area
    proto.access(10, addr, False, 5000)
    entry = proto.l2s[home].peek(block)
    assert entry.inter_area
    proto.check_block(block)
