"""Scenario tests for DiCo-Providers (Tables I and II)."""

import pytest

from repro.core.protocols.providers import DiCoProvidersProtocol
from repro.core.states import L1State

from ..conftest import addr_homed_at, block_homed_at, tiny_chip


@pytest.fixture
def proto() -> DiCoProvidersProtocol:
    # 4x4 chip, 4 areas of 2x2: areas are {0,1,4,5}, {2,3,6,7},
    # {8,9,12,13}, {10,11,14,15}
    return DiCoProvidersProtocol(tiny_chip(), seed=0)


HOME = 5  # tile 5 is in area 0


def areas_of(proto):
    return proto.areas


def test_local_read_at_owner_adds_sharer(proto):
    """Table I: owner + request from local area -> bit-vector sharer."""
    cfg = proto.config
    block = block_homed_at(cfg, HOME)
    addr = addr_homed_at(cfg, HOME)
    proto.access(0, addr, False, 0)    # tile 0 (area 0) owner
    proto.access(1, addr, False, 1250)   # tile 1 is in the same area
    owner = proto.l1s[0].peek(block)
    assert owner.state is L1State.O
    assert owner.sharers & (1 << 1)
    assert not owner.propos  # no provider was created
    assert proto.l1s[1].peek(block).state is L1State.S


def test_remote_read_creates_provider(proto):
    """Table I: owner + remote request + no provider -> requestor
    becomes the provider of its area."""
    cfg = proto.config
    block = block_homed_at(cfg, HOME)
    addr = addr_homed_at(cfg, HOME)
    proto.access(0, addr, False, 0)      # area-0 owner
    remote = 15                           # area 3
    proto.access(remote, addr, False, 1250)
    owner = proto.l1s[0].peek(block)
    area_r = proto.areas.area_of(remote)
    assert owner.propos == {area_r: remote}
    assert proto.l1s[remote].peek(block).state is L1State.P


def test_provider_serves_its_area_shortened_miss(proto):
    """Sec. V-D: misses that hit the provider stay inside the area."""
    cfg = proto.config
    block = block_homed_at(cfg, HOME)
    addr = addr_homed_at(cfg, HOME)
    proto.access(0, addr, False, 0)       # owner in area 0
    proto.access(10, addr, False, 1250)     # tile 10 becomes area-3 provider
    # another area-3 tile reads: routed to the provider
    r = proto.access(11, addr, False, 2500)
    assert r.category in ("unpredicted_provider", "pred_provider_hit")
    provider = proto.l1s[10].peek(block)
    assert provider.state is L1State.P
    assert provider.sharers & (1 << 11)
    assert proto.l1s[11].peek(block).state is L1State.S


def test_predicted_provider_hit_after_reuse(proto):
    cfg = proto.config
    block = block_homed_at(cfg, HOME)
    addr = addr_homed_at(cfg, HOME)
    proto.access(0, addr, False, 0)
    proto.access(10, addr, False, 1250)     # provider of area 3
    proto.access(11, addr, False, 2500)    # sharer, learns provider=10
    proto.drop_l1(11, block)
    r = proto.access(11, addr, False, 5000)
    assert r.category == "pred_provider_hit"


def test_provider_forwards_remote_reads_to_home(proto):
    """Table I: provider + remote request -> forward to home L2."""
    cfg = proto.config
    block = block_homed_at(cfg, HOME)
    addr = addr_homed_at(cfg, HOME)
    proto.access(0, addr, False, 0)
    proto.access(10, addr, False, 1250)  # provider in area 3
    # a tile in area 1 predicts the provider (wrong area)
    proto.l1cs[2].update(block, 10)
    r = proto.access(2, addr, False, 2500)
    assert r.category == "pred_miss"
    assert proto.l1s[2].peek(block) is not None  # still resolved
    proto.check_block(block)


def test_write_invalidates_provider_tree(proto):
    """Fig. 4: owner invalidates its area + providers; providers
    invalidate their areas; acks converge on the requestor."""
    cfg = proto.config
    block = block_homed_at(cfg, HOME)
    addr = addr_homed_at(cfg, HOME)
    proto.access(0, addr, False, 0)       # owner, area 0
    proto.access(1, addr, False, 500)      # sharer in area 0
    proto.access(10, addr, False, 1000)     # provider area 3
    proto.access(11, addr, False, 1500)     # sharer in area 3
    proto.access(2, addr, False, 2000)      # provider area 1
    writer = 12                            # area 2
    r = proto.access(writer, addr, True, 5000)
    assert not r.needs_retry
    for t in (0, 1, 10, 11, 2):
        assert proto.l1s[t].peek(block) is None, f"tile {t} kept a copy"
    line = proto.l1s[writer].peek(block)
    assert line.state is L1State.M and not line.propos
    assert proto.l2cs[HOME].peek_owner(block) == writer
    proto.check_block(block)


def test_writer_that_is_a_provider_cleans_its_own_area(proto):
    """Sec. IV-A special case: a provider that writes must invalidate
    its own area's sharers after receiving the ownership."""
    cfg = proto.config
    block = block_homed_at(cfg, HOME)
    addr = addr_homed_at(cfg, HOME)
    proto.access(0, addr, False, 0)    # owner area 0
    proto.access(10, addr, False, 500)  # provider area 3
    proto.access(11, addr, False, 1000)  # sharer of provider 10
    r = proto.access(10, addr, True, 2500)  # the provider writes
    assert not r.needs_retry
    assert proto.l1s[11].peek(block) is None
    assert proto.l1s[0].peek(block) is None
    assert proto.l1s[10].peek(block).state is L1State.M
    proto.check_block(block)


class TestTableIIReplacements:
    def test_shared_eviction_is_silent(self, proto):
        cfg = proto.config
        block = block_homed_at(cfg, HOME)
        addr = addr_homed_at(cfg, HOME)
        proto.access(0, addr, False, 0)
        proto.access(1, addr, False, 1250)
        msgs = proto.network.stats.messages
        line = proto.l1s[1].invalidate(block)
        proto._evict_l1_line(1, block, line, 2500)
        assert proto.network.stats.messages == msgs  # no traffic

    def test_provider_eviction_transfers_to_sharer(self, proto):
        cfg = proto.config
        block = block_homed_at(cfg, HOME)
        addr = addr_homed_at(cfg, HOME)
        proto.access(0, addr, False, 0)
        proto.access(10, addr, False, 500)  # provider area 3
        proto.access(11, addr, False, 1000)  # its sharer
        line = proto.l1s[10].invalidate(block)
        proto._evict_provider(10, block, line, 2500)
        new_provider = proto.l1s[11].peek(block)
        assert new_provider.state is L1State.P
        owner = proto.l1s[0].peek(block)
        assert owner.propos[proto.areas.area_of(11)] == 11
        assert proto.network.stats.by_type["Change_Provider"] == 1

    def test_provider_eviction_without_sharers_sends_no_provider(self, proto):
        cfg = proto.config
        block = block_homed_at(cfg, HOME)
        addr = addr_homed_at(cfg, HOME)
        proto.access(0, addr, False, 0)
        proto.access(10, addr, False, 500)  # provider area 3, no sharers
        line = proto.l1s[10].invalidate(block)
        proto._evict_provider(10, block, line, 2500)
        owner = proto.l1s[0].peek(block)
        assert proto.areas.area_of(10) not in owner.propos
        assert proto.network.stats.by_type["No_Provider"] == 1

    def test_owner_eviction_with_area_sharers_transfers(self, proto):
        cfg = proto.config
        block = block_homed_at(cfg, HOME)
        addr = addr_homed_at(cfg, HOME)
        proto.access(0, addr, False, 0)
        proto.access(1, addr, False, 500)   # sharer, same area
        proto.access(10, addr, False, 1000)  # provider, area 3
        line = proto.l1s[0].invalidate(block)
        proto._evict_owner(0, block, line, 2500)
        new_owner = proto.l1s[1].peek(block)
        assert new_owner.state is L1State.O
        assert new_owner.propos[proto.areas.area_of(10)] == 10
        assert proto.l2cs[HOME].peek_owner(block) == 1
        proto.check_block(block)

    def test_owner_eviction_without_area_sharers_goes_home(self, proto):
        cfg = proto.config
        block = block_homed_at(cfg, HOME)
        addr = addr_homed_at(cfg, HOME)
        proto.access(0, addr, False, 0)
        proto.access(10, addr, False, 500)  # provider area 3
        line = proto.l1s[0].invalidate(block)
        proto._evict_owner(0, block, line, 2500)
        entry = proto.l2s[HOME].peek(block)
        assert entry is not None and entry.is_owner
        # the home inherited the provider pointers
        assert entry.propos[proto.areas.area_of(10)] == 10
        proto.check_block(block)


def test_home_owner_forwards_to_area_provider(proto):
    """Table I: L2 owner + provider exists -> forward to provider."""
    cfg = proto.config
    block = block_homed_at(cfg, HOME)
    addr = addr_homed_at(cfg, HOME)
    proto.access(0, addr, False, 0)
    proto.access(10, addr, False, 500)  # provider of area 3
    line = proto.l1s[0].invalidate(block)
    proto._evict_owner(0, block, line, 1250)  # home becomes owner
    r = proto.access(11, addr, False, 2500)  # area 3 read
    assert r.category == "unpredicted_provider"
    assert proto.l1s[10].peek(block).sharers & (1 << 11)


def test_home_owner_grants_ownership_when_area_empty(proto):
    """Table I: L2 owner + no provider -> requestor becomes owner."""
    cfg = proto.config
    block = block_homed_at(cfg, HOME)
    addr = addr_homed_at(cfg, HOME)
    proto.access(0, addr, False, 0)
    line = proto.l1s[0].invalidate(block)
    proto._evict_owner(0, block, line, 1250)
    r = proto.access(12, addr, False, 2500)
    assert r.category == "unpredicted_home"
    owner = proto.l1s[12].peek(block)
    assert owner.state in (L1State.E, L1State.M)
    assert proto.l2cs[HOME].peek_owner(block) == 12


def test_forced_relinquish_makes_former_owner_a_provider():
    """Sec. IV-A1: after an L2C$ eviction the former owner becomes the
    provider for its area."""
    from dataclasses import replace

    cfg = replace(tiny_chip(), l2c_entries=16)
    proto = DiCoProvidersProtocol(cfg, seed=0)
    home = 5
    owners_first = 0
    first_block = block_homed_at(cfg, home, 0)
    proto.access(0, first_block << 6, False, 0)
    # flood the home's L2C$ with other owner pointers
    for i in range(1, cfg.l2c_entries + 8):
        proto.access(i % cfg.n_tiles, block_homed_at(cfg, home, i) << 6, False, i * 1000)
    # some blocks were relinquished; each former owner must now be a
    # provider or have lost its line legitimately — invariants hold
    for i in range(cfg.l2c_entries + 8):
        proto.check_block(block_homed_at(cfg, home, i))
    assert proto.l2cs[home].forced_relinquishes > 0
