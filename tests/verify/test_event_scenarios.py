"""Consolidation-event fuzzing: the migration-race scenarios, their
seeded mutations, and the event-op plumbing through bundles and CLI."""

import json

import pytest

from repro.cli import main
from repro.verify.bundle import replay_bundle
from repro.verify.fuzzer import (
    DEFAULT_POOL,
    EVENT_SCENARIOS,
    SCENARIOS,
    Op,
    generate_ops,
)
from repro.verify.runner import run_verification

N_TILES = 16

#: each consolidation mutation with the scenario that flushes it out
CAUGHT_BY = {
    "dico-migrate-stale-owner": ("dico", "migrate-race"),
    "directory-flush-lost-dirty": ("directory", "depart-dirty-owner"),
    "mesi-snoop-drain-ghost-owner": ("mesi-snoop", "depart-dirty-owner"),
}


# ---------------------------------------------------------------------------
# generators


def test_event_scenarios_are_not_in_the_default_rotation():
    # the long-standing seed->scenario mapping must not shift: event
    # scenarios are reachable only by explicit name
    assert not set(EVENT_SCENARIOS) & set(SCENARIOS)
    names = {generate_ops(s, 10, N_TILES)[0] for s in range(60)}
    assert names <= set(SCENARIOS)


@pytest.mark.parametrize("scenario", sorted(EVENT_SCENARIOS))
def test_event_scenarios_are_deterministic_and_bounded(scenario):
    _, a = generate_ops(42, 200, N_TILES, scenario)
    _, b = generate_ops(42, 200, N_TILES, scenario)
    assert a == b
    _, c = generate_ops(43, 200, N_TILES, scenario)
    assert a != c
    assert any(op.event is not None for op in a)
    for op in a:
        assert 0 <= op.tile < N_TILES
        assert 0 <= op.block < DEFAULT_POOL
        if op.event == "migrate":
            assert 0 <= op.arg < N_TILES


def test_event_op_round_trips_through_lists():
    plain = Op(tile=3, block=0x2A, is_write=True)
    assert len(plain.to_list()) == 3
    assert Op.from_list(plain.to_list()) == plain
    ev = Op(tile=5, block=0, is_write=False, event="migrate", arg=11)
    assert len(ev.to_list()) == 5
    assert Op.from_list(ev.to_list()) == ev
    drain = Op(tile=15, block=0, is_write=False, event="drain")
    assert Op.from_list(drain.to_list()) == drain


# ---------------------------------------------------------------------------
# the runner: clean sweeps and seeded mutations


def test_event_scenarios_pass_clean_on_all_protocols(tmp_path):
    report = run_verification(
        rounds=3, seed=11, n_ops=150, bundle_dir=tmp_path,
        scenarios=sorted(EVENT_SCENARIOS),
    )
    assert report.verdict == "pass"
    assert sorted(set(report.scenarios_run)) == sorted(EVENT_SCENARIOS)
    assert report.violations == []


def test_event_scenarios_pass_clean_on_both_engines(tmp_path):
    report = run_verification(
        rounds=3, seed=5, n_ops=120, bundle_dir=tmp_path, engine="both",
        scenarios=sorted(EVENT_SCENARIOS),
    )
    assert report.verdict == "pass"
    assert report.engine == "both"


def test_unknown_scenario_rejected():
    with pytest.raises(ValueError, match="unknown fuzz scenario"):
        run_verification(rounds=1, scenarios=["nope"])


@pytest.mark.parametrize("mutation", sorted(CAUGHT_BY))
def test_consolidation_mutations_are_caught_and_shrunk(mutation, tmp_path):
    protocol, scenario = CAUGHT_BY[mutation]
    report = run_verification(
        protocols=[protocol], rounds=3, seed=1, mutation=mutation,
        bundle_dir=tmp_path, scenarios=[scenario],
    )
    assert report.verdict == "fail"
    v = report.violations[0]
    assert v["protocol"] == protocol
    assert v["scenario"] == scenario
    assert v["shrunk_ops"] <= 20
    replay = replay_bundle(report.bundles[0])
    assert replay.matched, replay.message


def test_shrunk_event_traces_stay_well_formed(tmp_path):
    """ddmin may delete the migrate that reactivates a tile; later ops
    on that tile are skipped identically everywhere, so the minimum is
    a genuine single-protocol reproducer (pinned by replay)."""
    report = run_verification(
        protocols=["dico"], rounds=2, seed=1,
        mutation="dico-migrate-stale-owner",
        bundle_dir=tmp_path, scenarios=["migrate-race"],
    )
    assert report.verdict == "fail"
    doc = json.loads(open(report.bundles[0]).read())
    ops = [Op.from_list(o) for o in doc["ops"]]
    assert any(op.event == "migrate" for op in ops)


# ---------------------------------------------------------------------------
# CLI plumbing


def test_cli_scenario_flag_reaches_the_runner(tmp_path, capsys):
    rc = main([
        "verify", "--rounds", "2", "--ops", "120", "--seed", "4",
        "--scenario", "migrate-race", "--scenario", "shootdown-upgrade",
        "--bundle-dir", str(tmp_path),
    ])
    assert rc == 0
    doc = json.loads(capsys.readouterr().out)
    assert set(doc["scenarios_run"]) <= {"migrate-race", "shootdown-upgrade"}


def test_cli_mutation_with_scenario_exits_one(tmp_path, capsys):
    rc = main([
        "verify", "--rounds", "2", "--seed", "1",
        "--mutate", "mesi-snoop-drain-ghost-owner",
        "--protocols", "mesi-snoop",
        "--scenario", "depart-dirty-owner",
        "--bundle-dir", str(tmp_path),
    ])
    assert rc == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["verdict"] == "fail"
    assert doc["violations"][0]["shrunk_ops"] <= 20


def test_cli_unknown_scenario_exits_two(capsys):
    assert main(["verify", "--scenario", "nope"]) == 2
    assert "unknown fuzz scenario" in capsys.readouterr().err
