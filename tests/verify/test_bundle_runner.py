"""Repro bundles, the verification runner and the ``verify`` CLI."""

import json

import pytest

from repro.cli import main
from repro.verify.bundle import (
    BUNDLE_SCHEMA,
    load_bundle,
    replay_bundle,
    write_bundle,
)
from repro.verify.differential import Violation, default_config
from repro.verify.fuzzer import Op
from repro.verify.runner import DEFAULT_PROTOCOLS, run_verification

CONFIG = default_config()


def _dummy_violation():
    return Violation("coherence", "directory", 2, "made up", {"block": 5})


def test_bundle_round_trip(tmp_path):
    ops = [Op(0, 1, True), Op(1, 1, False), Op(2, 1, True)]
    path = write_bundle(
        tmp_path,
        protocol="directory",
        ops=ops,
        violation=_dummy_violation(),
        config=CONFIG,
        seed=9,
        scenario="ping-pong",
    )
    doc = load_bundle(path)
    assert doc["schema"] == BUNDLE_SCHEMA
    assert [Op.from_list(o) for o in doc["ops"]] == ops
    assert doc["violation"]["op_index"] == 2
    assert doc["scenario"] == "ping-pong"


def test_load_rejects_non_bundles(tmp_path):
    p = tmp_path / "x.json"
    p.write_text(json.dumps({"schema": "something-else"}))
    with pytest.raises(ValueError, match="not a verify bundle"):
        load_bundle(p)


def test_clean_verification_passes(tmp_path):
    report = run_verification(
        rounds=2, seed=5, n_ops=150, bundle_dir=tmp_path
    )
    assert report.verdict == "pass"
    assert report.rounds_run == 2
    assert report.violations == []
    assert report.bundles == []
    assert report.ops_executed == 2 * len(DEFAULT_PROTOCOLS) * 150


def test_mutated_verification_fails_shrinks_and_replays(tmp_path):
    """The acceptance path: inject a bug, catch it, shrink the trace
    to a handful of ops, and replay the bundle to the same violation."""
    report = run_verification(
        rounds=8,
        seed=1,
        mutation="arin-skip-broadcast",
        bundle_dir=tmp_path,
    )
    assert report.verdict == "fail"
    assert report.violations
    v = report.violations[0]
    assert v["protocol"] == "dico-arin"
    assert v["shrunk_ops"] <= 20
    assert report.bundles
    replay = replay_bundle(report.bundles[0])
    assert replay.matched, replay.message


def test_budget_bounds_rounds(tmp_path):
    report = run_verification(
        rounds=10_000, seed=3, n_ops=100, budget_seconds=1.0,
        bundle_dir=tmp_path,
    )
    assert report.rounds_run < 10_000
    assert report.verdict == "pass"


def test_report_is_machine_readable(tmp_path):
    report = run_verification(rounds=1, seed=0, n_ops=100, bundle_dir=tmp_path)
    out = report.save(tmp_path / "report.json")
    doc = json.loads(out.read_text())
    assert doc["schema"] == "repro-verify-report/v1"
    assert doc["verdict"] == "pass"
    assert doc["scenarios_run"]


# ---------------------------------------------------------------------------
# CLI exit codes

def test_cli_verify_clean_exits_zero(tmp_path, capsys):
    rc = main([
        "verify", "--rounds", "1", "--ops", "100", "--seed", "4",
        "--bundle-dir", str(tmp_path),
        "--output", str(tmp_path / "report.json"),
    ])
    assert rc == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["verdict"] == "pass"
    assert (tmp_path / "report.json").exists()


def test_cli_verify_mutation_exits_one(tmp_path, capsys):
    rc = main([
        "verify", "--rounds", "8", "--seed", "1",
        "--mutate", "vh-stale-l2dir",
        "--protocols", "vh",
        "--bundle-dir", str(tmp_path),
    ])
    assert rc == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["verdict"] == "fail"


def test_cli_verify_replay_round_trip(tmp_path, capsys):
    rc = main([
        "verify", "--rounds", "8", "--seed", "1",
        "--mutate", "directory-stale-eviction",
        "--protocols", "directory",
        "--bundle-dir", str(tmp_path),
    ])
    assert rc == 1
    bundles = list(tmp_path.glob("bundle-*.json"))
    assert bundles
    capsys.readouterr()
    rc = main(["verify", "--replay", str(bundles[0])])
    assert rc == 0


def test_cli_verify_bad_protocol_exits_two(capsys):
    assert main(["verify", "--protocols", "nope"]) == 2
    assert "unknown protocol" in capsys.readouterr().err


def test_cli_verify_bad_mutation_exits_two(capsys):
    assert main(["verify", "--mutate", "nope"]) == 2
    assert "unknown mutation" in capsys.readouterr().err


def test_cli_invalid_config_exits_two(capsys):
    rc = main([
        "run", "--protocol", "dico", "--workload", "apache",
        "--cycles", "0",
    ])
    assert rc == 2
    assert "cycles" in capsys.readouterr().err
