"""ddmin on synthetic predicates with known minima."""

from repro.verify.shrinker import ddmin


def test_single_culprit_shrinks_to_one():
    items = list(range(100))
    result = ddmin(items, lambda s: 37 in s)
    assert result == [37]


def test_pair_of_culprits_keeps_both():
    items = list(range(80))
    result = ddmin(items, lambda s: 5 in s and 63 in s)
    assert sorted(result) == [5, 63]


def test_order_dependent_failure_preserved():
    # fails only when 10 appears before 20 — ddmin must not reorder
    items = list(range(30))

    def failing(s):
        if 10 not in s or 20 not in s:
            return False
        return s.index(10) < s.index(20)

    result = ddmin(items, failing)
    assert result == [10, 20]


def test_result_is_one_minimal():
    items = list(range(50))

    def failing(s):
        return sum(s) >= 49 and 49 in s

    result = ddmin(items, failing)
    for i in range(len(result)):
        sub = result[:i] + result[i + 1 :]
        assert not failing(sub), f"removing {result[i]} still fails: not minimal"


def test_budget_returns_valid_failing_subset():
    items = list(range(200))
    result = ddmin(items, lambda s: 150 in s, max_tests=3)
    assert 150 in result  # possibly not minimal, but still failing


def test_everything_needed_returns_everything():
    items = [1, 2, 3, 4]
    result = ddmin(items, lambda s: len(s) == 4)
    assert result == items
