"""The adversarial generators: seeded, bounded, and varied."""

import pytest

from repro.verify.fuzzer import DEFAULT_POOL, Op, SCENARIOS, generate_ops

N_TILES = 16


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_same_seed_same_ops(scenario):
    _, a = generate_ops(42, 200, N_TILES, scenario)
    _, b = generate_ops(42, 200, N_TILES, scenario)
    assert a == b


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_different_seeds_differ(scenario):
    _, a = generate_ops(1, 200, N_TILES, scenario)
    _, b = generate_ops(2, 200, N_TILES, scenario)
    assert a != b


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_ops_stay_in_bounds(scenario):
    _, ops = generate_ops(7, 300, N_TILES, scenario)
    assert len(ops) == 300
    for op in ops:
        assert 0 <= op.tile < N_TILES
        assert 0 <= op.block < DEFAULT_POOL
        assert isinstance(op.is_write, bool)


def test_seed_picks_scenario_when_unspecified():
    names = {generate_ops(s, 10, N_TILES)[0] for s in range(40)}
    assert len(names) > 1  # the sweep actually rotates
    assert names <= set(SCENARIOS)


def test_unknown_scenario_rejected():
    with pytest.raises(ValueError, match="unknown fuzz scenario"):
        generate_ops(0, 10, N_TILES, "nope")


def test_op_round_trips_through_lists():
    op = Op(tile=3, block=0x2a, is_write=True)
    assert Op.from_list(op.to_list()) == op


def test_ping_pong_concentrates_on_one_block():
    _, ops = generate_ops(5, 200, N_TILES, "ping-pong")
    blocks = {op.block for op in ops}
    assert len(blocks) == 1
    assert sum(op.is_write for op in ops) > 100
