"""The differential harness: clean protocols pass, broken ones don't."""

import pytest

from repro.verify.differential import (
    Violation,
    default_config,
    run_differential,
    run_trace,
)
from repro.verify.fuzzer import Op, generate_ops
from repro.verify.mutations import MUTATIONS, make_mutated_factory
from repro.verify.runner import DEFAULT_PROTOCOLS

CONFIG = default_config()


@pytest.mark.parametrize("protocol", DEFAULT_PROTOCOLS)
@pytest.mark.parametrize("scenario", ["false-sharing", "racing-upgrades"])
def test_clean_protocol_survives_a_round(protocol, scenario):
    _, ops = generate_ops(11, 250, CONFIG.n_tiles, scenario)
    result = run_trace(protocol, ops, CONFIG)
    assert result.violation is None, result.violation
    assert result.ops_executed == len(ops)
    assert len(result.versions) == len(ops)


def test_version_streams_agree_across_protocols():
    _, ops = generate_ops(3, 200, CONFIG.n_tiles, "eviction-storm")
    results, violations = run_differential(ops, DEFAULT_PROTOCOLS, CONFIG)
    assert violations == []
    streams = {tuple(r.versions) for r in results}
    assert len(streams) == 1  # committed order identical everywhere


def test_oracle_counts_serial_writes():
    ops = [
        Op(0, 5, True),
        Op(1, 5, False),
        Op(2, 5, True),
        Op(3, 5, False),
    ]
    result = run_trace("directory", ops, CONFIG)
    assert result.violation is None
    assert result.versions == [1, 1, 2, 2]


@pytest.mark.parametrize("name", sorted(MUTATIONS))
def test_mutation_is_caught(name):
    """The seeded-bug satellite: flipping one protocol transition must
    trip the harness (checker, audit, or oracle — per the mutation's
    documented detector)."""
    mutation = MUTATIONS[name]
    factory = make_mutated_factory(name)
    caught = None
    for r in range(8):
        # consolidation mutations only arm on event ops, so they name
        # the scenario that reaches them; the rest use the rotation
        _, ops = generate_ops(
            1_000_003 + r, 400, CONFIG.n_tiles, scenario=mutation.scenario
        )
        result = run_trace(
            mutation.protocol, ops, CONFIG, seed=r, factory=factory
        )
        if result.violation is not None:
            caught = result.violation
            break
    assert caught is not None, f"{name} escaped 8 fuzz rounds"
    assert caught.protocol == mutation.protocol
    if name == "dico-lost-commit":
        # invisible to the self-consistent checker; only the
        # commit-count oracle can see the lost write
        assert caught.kind == "oracle"


def test_mutated_factory_leaves_other_protocols_stock():
    factory = make_mutated_factory("vh-stale-l2dir")
    _, ops = generate_ops(21, 150, CONFIG.n_tiles, "false-sharing")
    result = run_trace("directory", ops, CONFIG, factory=factory)
    assert result.violation is None


def test_same_failure_matches_on_kind_and_protocol():
    a = Violation("coherence", "vh", 10, "x")
    b = Violation("coherence", "vh", 99, "y")
    c = Violation("oracle", "vh", 10, "x")
    assert a.same_failure(b)
    assert not a.same_failure(c)
