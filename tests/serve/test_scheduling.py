"""Unit tests for admission control and weighted-fair scheduling.

All deterministic: the token bucket and admission controller take an
injectable clock; the worker pool is driven inside explicit asyncio
loops with no sleeps on the success paths.
"""

import asyncio

import pytest

from repro.serve.scheduling import (
    AdmissionController,
    AdmissionError,
    FairWorkerPool,
    TenantQuota,
    TokenBucket,
)


class FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


# ---------------------------------------------------------------- quota


def test_quota_validation():
    with pytest.raises(ValueError):
        TenantQuota(max_pending=0)
    with pytest.raises(ValueError):
        TenantQuota(weight=0)
    with pytest.raises(ValueError):
        TenantQuota(rate=-1.0)


def test_quota_effective_burst():
    assert TenantQuota(rate=0.0).effective_burst == float("inf")
    assert TenantQuota(rate=4.0).effective_burst == 4.0
    assert TenantQuota(rate=4.0, burst=10.0).effective_burst == 10.0
    assert TenantQuota(rate=0.25).effective_burst == 1.0


# ---------------------------------------------------------------- bucket


def test_token_bucket_refills_continuously():
    clock = FakeClock()
    bucket = TokenBucket(rate=2.0, burst=4.0, clock=clock)
    assert bucket.try_take(4)
    assert not bucket.try_take(1)
    clock.advance(0.5)  # one token back
    assert bucket.try_take(1)
    assert not bucket.try_take(1)


def test_token_bucket_caps_at_burst():
    clock = FakeClock()
    bucket = TokenBucket(rate=10.0, burst=3.0, clock=clock)
    clock.advance(100.0)
    assert bucket.tokens == 3.0


def test_token_bucket_seconds_until():
    clock = FakeClock()
    bucket = TokenBucket(rate=2.0, burst=4.0, clock=clock)
    bucket.try_take(4)
    assert bucket.seconds_until(2) == pytest.approx(1.0)
    # asking beyond burst: advice is capped at the fill-to-burst time
    assert bucket.seconds_until(100) == pytest.approx(2.0)


def test_zero_rate_is_unlimited():
    bucket = TokenBucket(rate=0.0, burst=0.0, clock=FakeClock())
    for _ in range(1000):
        assert bucket.try_take(10)
    assert bucket.seconds_until(10 ** 9) == 0.0


# ------------------------------------------------------------- admission


def _controller(**kwargs):
    defaults = dict(
        max_queue_points=10,
        default_quota=TenantQuota(max_pending=6),
        clock=FakeClock(),
    )
    defaults.update(kwargs)
    return AdmissionController(**defaults)


def test_admit_and_release_accounting():
    ctl = _controller()
    ctl.admit("a", 3)
    ctl.admit("b", 2)
    assert ctl.total_pending == 5
    assert ctl.pending("a") == 3
    for _ in range(3):
        ctl.release("a")
    assert ctl.pending("a") == 0
    assert ctl.total_pending == 2


def test_global_bound_gives_queue_full():
    ctl = _controller()
    ctl.admit("a", 6)
    ctl.admit("b", 4)
    with pytest.raises(AdmissionError) as err:
        ctl.admit("c", 1)
    assert err.value.reason == "queue-full"
    assert err.value.retry_after_s > 0
    assert ctl.rejected["queue-full"] == 1
    # admission is all-or-nothing: the failed submission reserved nothing
    assert ctl.total_pending == 10


def test_tenant_quota_enforced_before_global():
    ctl = _controller()
    ctl.admit("a", 6)
    with pytest.raises(AdmissionError) as err:
        ctl.admit("a", 1)
    assert err.value.reason == "tenant-quota"
    # another tenant still fits
    ctl.admit("b", 4)


def test_rate_limit_reports_usable_retry_after():
    clock = FakeClock()
    ctl = _controller(
        clock=clock,
        quotas={"r": TenantQuota(max_pending=6, rate=1.0, burst=2.0)},
    )
    ctl.admit("r", 2)
    with pytest.raises(AdmissionError) as err:
        ctl.admit("r", 1)
    assert err.value.reason == "rate-limited"
    clock.advance(err.value.retry_after_s)
    ctl.admit("r", 1)  # the advice was sufficient


def test_force_bypasses_every_bound():
    ctl = _controller()
    ctl.admit("a", 6)
    ctl.admit("a", 50, force=True)  # resume path
    assert ctl.pending("a") == 56


def test_release_underflow_is_an_error():
    ctl = _controller()
    with pytest.raises(RuntimeError):
        ctl.release("ghost")


def test_snapshot_shape():
    ctl = _controller()
    ctl.admit("a", 2)
    snap = ctl.snapshot()
    assert snap["total_pending"] == 2
    assert snap["pending_by_tenant"] == {"a": 2}
    assert set(snap["rejected"]) == {
        "queue-full", "tenant-quota", "rate-limited"
    }


# ------------------------------------------------------------------ pool


def test_pool_grants_up_to_slots():
    async def scenario():
        pool = FairWorkerPool(2)
        await pool.acquire("a")
        await pool.acquire("a")
        assert pool.busy == 2
        third = asyncio.ensure_future(pool.acquire("a"))
        await asyncio.sleep(0)
        assert not third.done()
        pool.release("a")
        await asyncio.sleep(0)
        assert third.done()
        pool.release("a")
        pool.release("a")
        assert pool.busy == 0

    asyncio.run(scenario())


def test_pool_wrr_interleaving_is_three_to_one():
    """Both tenants backlogged, weights 3:1: every window of four
    grants carries exactly one light grant (smooth WRR)."""

    async def scenario():
        weights = {"heavy": 3, "light": 1, "seed": 1}
        pool = FairWorkerPool(1, weight_of=lambda t: weights[t])
        order = []

        async def one(tenant):
            # one-shot acquirers: the daemon runs many concurrent point
            # tasks per tenant, so both queues hold live waiters at
            # every grant — exactly what this models
            await pool.acquire(tenant)
            order.append(tenant)
            pool.release(tenant)

        await pool.acquire("seed")
        tasks = [asyncio.ensure_future(one("heavy")) for _ in range(30)]
        tasks += [asyncio.ensure_future(one("light")) for _ in range(10)]
        await asyncio.sleep(0)
        pool.release("seed")
        await asyncio.gather(*tasks)
        return order

    order = asyncio.run(scenario())
    assert order.count("heavy") == 30 and order.count("light") == 10
    for i in range(0, 40, 4):
        window = order[i: i + 4]
        assert window.count("light") == 1, (i, order)


def test_pool_single_tenant_gets_full_capacity():
    async def scenario():
        pool = FairWorkerPool(2, weight_of=lambda t: 1)
        done = 0
        async def worker():
            nonlocal done
            await pool.acquire("solo")
            done += 1
            pool.release("solo")
        await asyncio.gather(*[worker() for _ in range(20)])
        return done

    assert asyncio.run(scenario()) == 20


def test_pool_cancelled_waiter_does_not_strand_slots():
    async def scenario():
        pool = FairWorkerPool(1)
        await pool.acquire("a")
        waiter = asyncio.ensure_future(pool.acquire("b"))
        await asyncio.sleep(0)
        waiter.cancel()
        with pytest.raises(asyncio.CancelledError):
            await waiter
        pool.release("a")
        # a fresh acquirer must get the slot even though a cancelled
        # future is still lingering in b's queue
        await asyncio.wait_for(pool.acquire("c"), timeout=1.0)
        pool.release("c")
        assert pool.busy == 0

    asyncio.run(scenario())


def test_pool_acquire_after_free_with_stale_queue():
    """Free slot + stale cancelled waiter: acquire must not deadlock."""

    async def scenario():
        pool = FairWorkerPool(1)
        waiter = asyncio.ensure_future(pool.acquire("a"))
        await asyncio.sleep(0)  # granted immediately
        assert waiter.done()
        stale = asyncio.ensure_future(pool.acquire("a"))
        await asyncio.sleep(0)
        stale.cancel()
        with pytest.raises(asyncio.CancelledError):
            await stale
        pool.release("a")  # slot free, a's queue holds a cancelled future
        await asyncio.wait_for(pool.acquire("b"), timeout=1.0)
        pool.release("b")

    asyncio.run(scenario())


def test_pool_release_without_acquire_raises():
    async def scenario():
        pool = FairWorkerPool(1)
        with pytest.raises(RuntimeError):
            pool.release("nobody")

    asyncio.run(scenario())
