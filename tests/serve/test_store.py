"""Unit tests for the durable job store."""

import json

import pytest

from repro.serve.store import JobStore


def doc(job_id="0001-abcd", status="active", created=100.0):
    return {
        "job_id": job_id,
        "tenant": "t",
        "status": status,
        "created_unix": created,
        "specs": [],
        "policy": {},
    }


def test_save_load_roundtrip(tmp_path):
    store = JobStore(tmp_path)
    store.save(doc())
    got = store.load("0001-abcd")
    assert got["status"] == "active"
    assert got["schema"] == 1


def test_load_missing_is_none(tmp_path):
    assert JobStore(tmp_path).load("nope") is None


def test_save_overwrites_atomically(tmp_path):
    store = JobStore(tmp_path)
    store.save(doc(status="active"))
    store.save(doc(status="done"))
    assert store.load("0001-abcd")["status"] == "done"
    # no temp droppings left behind
    leftovers = [
        p.name for p in store.root.iterdir()
        if p.name.startswith(".tmp-")
    ]
    assert leftovers == []


def test_load_all_sorted_and_skips_garbage(tmp_path):
    store = JobStore(tmp_path)
    store.save(doc("b", created=2.0))
    store.save(doc("a", created=1.0))
    (store.root / "junk.json").write_text("{ not json")
    docs = store.load_all()
    assert [d["job_id"] for d in docs] == ["a", "b"]


def test_load_active_filters_status(tmp_path):
    store = JobStore(tmp_path)
    store.save(doc("x", status="active"))
    store.save(doc("y", status="done"))
    store.save(doc("z", status="partial"))
    assert [d["job_id"] for d in store.load_active()] == ["x"]


def test_bad_job_ids_rejected(tmp_path):
    store = JobStore(tmp_path)
    for bad in ("", "../escape", "a/b", ".hidden"):
        with pytest.raises(ValueError):
            store.path_for(bad)


def test_delete(tmp_path):
    store = JobStore(tmp_path)
    store.save(doc())
    assert store.delete("0001-abcd") is True
    assert store.delete("0001-abcd") is False
    assert store.load("0001-abcd") is None


def test_empty_store_dir(tmp_path):
    store = JobStore(tmp_path)
    assert store.load_all() == []
    assert store.load_active() == []
