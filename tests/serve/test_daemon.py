"""Integration tests for the experiment daemon.

A real :class:`ExperimentServer` runs on a background thread with its
own event loop; tests talk to it over actual HTTP through
:class:`ServeClient` — the same path production clients use.  Specs
are tiny (~0.1 s of simulation), so the whole module stays fast.
"""

import json
import threading

import pytest

from repro.faults import FaultPlan, FaultPolicy, FaultRule
from repro.serve import (
    Backpressure,
    ExperimentServer,
    ServeClient,
    ServeConfig,
    ServeError,
    TenantQuota,
)
from repro.sim.config import small_test_chip
from repro.sweep.cache import ResultCache, stats_checksum
from repro.sweep.spec import RunSpec, config_to_dict
from repro.stats.io import stats_to_dict

TINY = config_to_dict(small_test_chip())


def tiny_docs(n, seed0=1):
    return [
        RunSpec(
            protocol="dico",
            workload="radix",
            seed=seed0 + i,
            cycles=1_500,
            warmup=500,
            config=TINY,
        ).to_dict()
        for i in range(n)
    ]


class ServerThread:
    """Run an ExperimentServer on its own thread + loop."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.server = None
        self._ready = threading.Event()
        self._thread = None

    def start(self) -> ServeClient:
        import asyncio

        def run():
            async def main():
                self.server = ExperimentServer(self.config)
                await self.server.start()
                self._ready.set()
                await self.server._closing.wait()
                await self.server.shutdown(
                    drain=self.server._shutdown_drain
                )

            asyncio.run(main())

        self._thread = threading.Thread(target=run, daemon=True)
        self._thread.start()
        assert self._ready.wait(15), "server did not start"
        return ServeClient("127.0.0.1", self.server.port, timeout_s=60.0)

    def stop(self, client: ServeClient) -> None:
        try:
            client.shutdown(drain=True)
        except (ServeError, OSError):
            pass
        self._thread.join(timeout=30)
        assert not self._thread.is_alive(), "server thread hung"


def make_config(tmp_path, **kwargs):
    defaults = dict(
        cache_dir=str(tmp_path / "cache"),
        port=0,
        workers=2,
        default_policy=FaultPolicy(
            timeout_s=60.0, max_retries=1, on_failure="skip"
        ),
        journal_gc_days=0,  # no background GC task in tests
        drain_s=5.0,
    )
    defaults.update(kwargs)
    return ServeConfig(**defaults)


@pytest.fixture
def server(tmp_path):
    st = ServerThread(make_config(tmp_path))
    client = st.start()
    yield client, st
    st.stop(client)


# ------------------------------------------------------------------ basics


def test_submit_execute_stream(server, tmp_path):
    client, st = server
    docs = tiny_docs(2)
    sub = client.submit(docs, tenant="alice")
    assert sub["points"] == 2
    events = client.wait_job(sub["job_id"])
    assert [e["index"] for e in events] == [0, 1]
    assert all(e["status"] == "ok" for e in events)
    assert all(len(e["stats_sha256"]) == 64 for e in events)
    assert all(e["summary"]["operations"] > 0 for e in events)
    job = client.job(sub["job_id"])
    assert job["status"] == "done"
    assert job["counts"]["ok"] == 2
    # terminal job record persisted as done
    record = json.loads(
        (tmp_path / "cache" / "serve" / "jobs"
         / f"{sub['job_id']}.json").read_text()
    )
    assert record["status"] == "done"


def test_results_are_bit_identical_to_direct_execution(server):
    client, _ = server
    doc = tiny_docs(1)[0]
    events = client.wait_job(client.submit([doc])["job_id"])
    want = stats_checksum(stats_to_dict(RunSpec.from_dict(doc).execute()))
    assert events[0]["stats_sha256"] == want


def test_cache_hit_on_resubmission(server):
    client, st = server
    docs = tiny_docs(1, seed0=50)
    client.wait_job(client.submit(docs, tenant="a")["job_id"])
    events = client.wait_job(client.submit(docs, tenant="b")["job_id"])
    assert events[0]["status"] == "ok"
    assert events[0]["cached"] is True
    stats = client.stats()
    assert stats["points"]["executed"] == 1
    assert stats["points"]["cache_hits"] >= 1


def test_concurrent_identical_submissions_dedupe(server):
    client, st = server
    docs = tiny_docs(1, seed0=60)
    subs = [client.submit(docs, tenant=t) for t in ("a", "b", "c")]
    for sub in subs:
        events = client.wait_job(sub["job_id"])
        assert events[0]["status"] == "ok"
    # one simulation total: the rest were in-flight dedup or cache hits
    points = client.stats()["points"]
    assert points["executed"] == 1
    assert points["dedup"] + points["cache_hits"] == 2


def test_health_stats_and_listing(server):
    client, _ = server
    assert client.health()["status"] == "ok"
    sub = client.submit(tiny_docs(1, seed0=70))
    client.wait_job(sub["job_id"])
    assert any(j["job_id"] == sub["job_id"] for j in client.jobs())
    stats = client.stats()
    assert stats["workers"]["slots"] == 2
    assert "rejected" in stats["admission"]
    assert "quarantined" in stats["cache"]


# ------------------------------------------------------------- validation


def test_malformed_submissions_rejected(server):
    client, _ = server
    with pytest.raises(ServeError) as err:
        client.submit([])
    assert err.value.status == 400
    with pytest.raises(ServeError) as err:
        client.submit([{"workload": "radix"}])  # no protocol
    assert err.value.status == 400
    with pytest.raises(ServeError) as err:
        client.submit(tiny_docs(1), tenant="bad tenant!")
    assert err.value.status == 400
    with pytest.raises(ServeError) as err:
        client.submit(tiny_docs(1), policy={"no_such_knob": 1})
    assert err.value.status == 400


def test_unknown_routes_and_jobs_are_404(server):
    client, _ = server
    with pytest.raises(ServeError) as err:
        client.job("0000-deadbeef")
    assert err.value.status == 404
    with pytest.raises(ServeError) as err:
        client._request("GET", "/nope")
    assert err.value.status == 404


# ----------------------------------------------------------- backpressure


def test_queue_full_gives_429_with_retry_after(tmp_path):
    st = ServerThread(make_config(
        tmp_path, workers=1, max_queue_points=2,
    ))
    client = st.start()
    try:
        accepted = client.submit(tiny_docs(2, seed0=80), tenant="a")
        with pytest.raises(Backpressure) as err:
            client.submit(tiny_docs(1, seed0=90), tenant="b")
        assert err.value.status == 429
        assert err.value.reason == "queue-full"
        assert err.value.retry_after_s > 0
        # the refused submission reserved nothing: after the queue
        # drains the tenant can come back
        client.wait_job(accepted["job_id"])
        again = client.submit(tiny_docs(1, seed0=90), tenant="b")
        client.wait_job(again["job_id"])
    finally:
        st.stop(client)


def test_tenant_quota_and_rate_limits(tmp_path):
    st = ServerThread(make_config(
        tmp_path,
        workers=1,
        max_queue_points=100,
        quotas={
            "small": TenantQuota(max_pending=1),
            "rated": TenantQuota(max_pending=50, rate=0.001, burst=2.0),
        },
    ))
    client = st.start()
    try:
        client.submit(tiny_docs(1, seed0=100), tenant="small")
        with pytest.raises(Backpressure) as err:
            client.submit(tiny_docs(1, seed0=101), tenant="small")
        assert err.value.reason == "tenant-quota"
        client.submit(tiny_docs(2, seed0=110), tenant="rated")
        with pytest.raises(Backpressure) as err:
            client.submit(tiny_docs(1, seed0=112), tenant="rated")
        assert err.value.reason == "rate-limited"
        assert err.value.retry_after_s > 10  # 1 token at 0.001/s
    finally:
        st.stop(client)


# ----------------------------------------------------------------- faults


def test_failing_point_gets_structured_record(tmp_path):
    plan = FaultPlan(seed=5, rules=(FaultRule(kind="crash", rate=1.0,
                                              times=99),))
    st = ServerThread(make_config(tmp_path, fault_plan=plan))
    client = st.start()
    try:
        events = client.wait_job(
            client.submit(
                tiny_docs(1, seed0=120),
                policy={"max_retries": 1, "backoff_base_s": 0.01},
            )["job_id"]
        )
        assert events[0]["status"] == "failed"
        assert events[0]["attempts"] == 2
        failure = events[0]["failure"]
        assert failure["kind"] == "crash"
        assert failure["fingerprint"]
        job = client.job(client.jobs()[0]["job_id"])
        assert job["status"] == "partial"
    finally:
        st.stop(client)


def test_transient_crash_retries_to_success(tmp_path):
    plan = FaultPlan(seed=5, rules=(FaultRule(kind="crash", rate=1.0,
                                              times=1),))
    st = ServerThread(make_config(tmp_path, fault_plan=plan))
    client = st.start()
    try:
        doc = tiny_docs(1, seed0=130)[0]
        events = client.wait_job(
            client.submit(
                [doc], policy={"max_retries": 2, "backoff_base_s": 0.01}
            )["job_id"]
        )
        assert events[0]["status"] == "ok"
        assert events[0]["attempts"] == 2
        want = stats_checksum(
            stats_to_dict(RunSpec.from_dict(doc).execute())
        )
        assert events[0]["stats_sha256"] == want  # retry didn't perturb
        assert client.stats()["points"]["retries"] == 1
    finally:
        st.stop(client)


# ----------------------------------------------------------------- cancel


def test_cancel_queued_points(tmp_path):
    st = ServerThread(make_config(tmp_path, workers=1))
    client = st.start()
    try:
        # 4 points through 1 worker: cancel lands while most are queued
        sub = client.submit(tiny_docs(4, seed0=140), tenant="c")
        client.cancel(sub["job_id"])
        events = client.wait_job(sub["job_id"])
        statuses = {e["status"] for e in events}
        assert statuses <= {"ok", "cancelled"}
        assert "cancelled" in statuses
        cancelled = [e for e in events if e["status"] == "cancelled"]
        assert all(
            e["failure"]["kind"] == "interrupted" for e in cancelled
        )
        assert client.job(sub["job_id"])["status"] == "cancelled"
    finally:
        st.stop(client)


# ----------------------------------------------------------------- resume


def test_restart_resumes_active_job(tmp_path):
    config = make_config(tmp_path)
    st = ServerThread(config)
    client = st.start()
    docs = tiny_docs(3, seed0=150)
    sub = client.submit(docs, tenant="r")
    events = client.wait_job(sub["job_id"])
    assert all(e["status"] == "ok" for e in events)
    st.stop(client)

    # simulate dying before the final record write: flip the job back
    # to active and lose one cache entry (as if quarantined)
    record_path = (
        tmp_path / "cache" / "serve" / "jobs" / f"{sub['job_id']}.json"
    )
    record = json.loads(record_path.read_text())
    record["status"] = "active"
    record_path.write_text(json.dumps(record))
    cache = ResultCache(tmp_path / "cache")
    lost_fp = events[1]["fingerprint"]
    cache.path_for(RunSpec.from_dict(docs[1])).unlink()

    st2 = ServerThread(make_config(tmp_path))
    client2 = st2.start()
    try:
        events2 = client2.wait_job(sub["job_id"])
        assert [e["index"] for e in events2] == [0, 1, 2]
        assert all(e["status"] == "ok" for e in events2)
        by_index = {e["index"]: e for e in events2}
        # journal+cache intact -> served without re-execution
        assert by_index[0].get("resumed") is True
        assert by_index[2].get("resumed") is True
        # the lost entry re-executed, bit-identical
        assert by_index[1].get("resumed") is None
        assert by_index[1]["fingerprint"] == lost_fp
        assert by_index[1]["stats_sha256"] == events[1]["stats_sha256"]
        points = client2.stats()["points"]
        assert points["points_resumed"] == 2
        assert points["executed"] == 1
        assert client2.job(sub["job_id"])["status"] == "done"
    finally:
        st2.stop(client2)
