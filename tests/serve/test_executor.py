"""Process-isolated attempt execution: outcomes, deadlines, registry.

These use the same tiny specs and fault plans as the sweep resilience
suite — the worker entry point is shared, so behavior must match.
"""

import pytest

from repro.faults import FaultPlan, FaultRule
from repro.serve.executor import AttemptRegistry, run_attempt
from repro.sim.config import small_test_chip
from repro.stats.io import stats_from_dict
from repro.sweep.spec import RunSpec, config_to_dict

TINY = config_to_dict(small_test_chip())


def tiny_payload(attempt=1, plan=None, seed=1):
    spec = RunSpec(
        protocol="dico",
        workload="radix",
        seed=seed,
        cycles=1_500,
        warmup=500,
        config=TINY,
    )
    payload = spec.to_dict()
    payload["__attempt__"] = attempt
    if plan is not None:
        payload["__fault_plan__"] = plan.to_dict()
    return spec, payload


def test_ok_attempt_returns_stats_doc():
    spec, payload = tiny_payload()
    kind, doc, elapsed = run_attempt(payload, timeout_s=60.0)
    assert kind == "ok"
    stats = stats_from_dict(doc)
    assert stats.operations > 0
    assert elapsed > 0


def test_injected_crash_is_contained():
    plan = FaultPlan(seed=3, rules=(FaultRule(kind="crash", rate=1.0),))
    spec, payload = tiny_payload(plan=plan)
    kind, message, _elapsed = run_attempt(payload, timeout_s=60.0)
    assert kind == "crash"
    assert "died" in message


def test_injected_hang_hits_the_deadline():
    plan = FaultPlan(
        seed=3, rules=(FaultRule(kind="hang", rate=1.0),), hang_s=30.0
    )
    spec, payload = tiny_payload(plan=plan)
    kind, message, elapsed = run_attempt(payload, timeout_s=1.0)
    assert kind == "timeout"
    assert elapsed < 15.0  # killed at the deadline, not after hang_s


def test_bad_spec_is_an_exception_outcome():
    _spec, payload = tiny_payload()
    payload["protocol"] = "no-such-protocol"
    kind, failure, _elapsed = run_attempt(payload, timeout_s=60.0)
    assert kind == "exception"
    assert failure["exc_type"]
    assert failure["message"]


def test_fault_only_on_matched_attempt():
    plan = FaultPlan(
        seed=3, rules=(FaultRule(kind="crash", rate=1.0, times=1),)
    )
    _spec, payload = tiny_payload(attempt=2, plan=plan)
    kind, _doc, _elapsed = run_attempt(payload, timeout_s=60.0)
    assert kind == "ok"  # times=1 leaves attempt 2 alone


def test_registry_refuses_work_while_draining():
    registry = AttemptRegistry()
    assert registry.kill_all() == 0
    _spec, payload = tiny_payload()
    kind, message, elapsed = run_attempt(
        payload, timeout_s=60.0, registry=registry
    )
    assert kind == "crash"
    assert "shutting down" in message


def test_registry_tracks_and_discards():
    registry = AttemptRegistry()
    _spec, payload = tiny_payload()
    kind, _doc, _elapsed = run_attempt(
        payload, timeout_s=60.0, registry=registry
    )
    assert kind == "ok"
    assert len(registry) == 0  # discarded after completion
