"""Unit tests for the static area division."""

import pytest

from repro.core.area import AreaMap


def test_paper_four_quadrants():
    areas = AreaMap(8, 8, 4)
    assert areas.tiles_per_area == 16
    assert areas.area_width == 4 and areas.area_height == 4
    # quadrant corners
    assert areas.area_of(0) == 0
    assert areas.area_of(7) == 1
    assert areas.area_of(56) == 2
    assert areas.area_of(63) == 3
    # each area has exactly 16 tiles and they partition the chip
    all_tiles = []
    for a in range(4):
        tiles = areas.tiles_of(a)
        assert len(tiles) == 16
        assert all(areas.area_of(t) == a for t in tiles)
        all_tiles.extend(tiles)
    assert sorted(all_tiles) == list(range(64))


def test_same_area():
    areas = AreaMap(8, 8, 4)
    assert areas.same_area(0, 27)  # both in quadrant 0
    assert not areas.same_area(0, 63)


def test_local_index_roundtrip():
    areas = AreaMap(8, 8, 4)
    for t in range(64):
        a = areas.area_of(t)
        li = areas.local_index(t)
        assert 0 <= li < 16
        assert areas.tile_from_local(a, li) == t


def test_two_areas_split():
    areas = AreaMap(8, 8, 2)
    assert areas.tiles_per_area == 32
    assert areas.area_of(0) != areas.area_of(63)


def test_areas_equal_tiles():
    areas = AreaMap(4, 4, 16)
    assert areas.tiles_per_area == 1
    assert [areas.area_of(t) for t in range(16)] == list(range(16))


def test_single_area():
    areas = AreaMap(4, 4, 1)
    assert areas.area_of(0) == areas.area_of(15) == 0


def test_rectangular_mesh():
    areas = AreaMap(16, 8, 8)
    assert areas.tiles_per_area == 16
    sizes = [len(areas.tiles_of(a)) for a in range(8)]
    assert sizes == [16] * 8


def test_impossible_tiling_rejected():
    with pytest.raises(ValueError):
        AreaMap(8, 8, 5)  # 5 does not tile 8x8
    with pytest.raises(ValueError):
        AreaMap(8, 8, 0)
