"""Unit tests for the pluggable protocol registry."""

import pytest

import repro.core.protocols  # noqa: F401 - populates the global registry
from repro.core.protocols.registry import (
    PROTOCOLS,
    REGISTRY,
    ProtocolInfo,
    ProtocolRegistry,
    expand_selection,
    protocol_names,
    protocol_table_markdown,
)


class _Fake:
    name = "fake"


def _info(name, family="test", **kw):
    return ProtocolInfo(name=name, cls=_Fake, family=family, **kw)


class TestRegistration:
    def test_duplicate_name_rejected(self):
        r = ProtocolRegistry()
        r.register(_info("a"))
        with pytest.raises(ValueError, match="already registered"):
            r.register(_info("a"))

    def test_alias_colliding_with_name_rejected(self):
        r = ProtocolRegistry()
        r.register(_info("a"))
        with pytest.raises(ValueError, match="already registered"):
            r.register(_info("b", aliases=("a",)))

    def test_name_colliding_with_alias_rejected(self):
        r = ProtocolRegistry()
        r.register(_info("a", aliases=("short",)))
        with pytest.raises(ValueError, match="already registered"):
            r.register(_info("short"))

    def test_all_is_reserved(self):
        r = ProtocolRegistry()
        with pytest.raises(ValueError, match="reserved"):
            r.register(_info("all"))
        with pytest.raises(ValueError, match="reserved"):
            r.register(_info("b", aliases=("all",)))


class TestQueries:
    def test_global_registration_order(self):
        # registration order is the lab's canonical presentation order:
        # the paper's four, then the comparators, then the new families
        assert protocol_names() == (
            "directory", "dico", "dico-providers", "dico-arin", "vh",
            "mesi-snoop", "moesi-snoop", "dls",
        )

    def test_alias_resolution(self):
        assert REGISTRY.resolve("providers") == "dico-providers"
        assert REGISTRY.resolve("mesi") == "mesi-snoop"
        assert REGISTRY.resolve("moesi") == "moesi-snoop"
        assert REGISTRY.resolve("directoryless") == "dls"
        assert REGISTRY.resolve("dico") == "dico"

    def test_unknown_name_lists_options(self):
        with pytest.raises(ValueError, match="unknown protocol 'mosi'"):
            REGISTRY.resolve("mosi")

    def test_family_queries(self):
        snoop = REGISTRY.by_family("snoop")
        assert [i.name for i in snoop] == ["mesi-snoop", "moesi-snoop"]
        assert all(i.transport == "bus" for i in snoop)
        assert {i.family for i in REGISTRY.infos()} == set(REGISTRY.families())

    def test_contains_covers_aliases(self):
        assert "dls" in REGISTRY
        assert "directoryless" in REGISTRY
        assert "mosi" not in REGISTRY

    def test_supports_simx_walks_the_mro(self):
        from repro.sim.chip import PROTOCOLS as P

        class Mutant(P["dico"]):
            pass

        assert REGISTRY.supports_simx(P["dico"])
        assert REGISTRY.supports_simx(Mutant)
        assert not REGISTRY.supports_simx(P["mesi-snoop"])
        assert not REGISTRY.supports_simx(_Fake)


class TestExpandSelection:
    def test_all_keyword(self):
        assert expand_selection("all") == protocol_names()

    def test_family_glob(self):
        assert expand_selection("snoop:*") == ("mesi-snoop", "moesi-snoop")

    def test_comma_combination_dedups_in_first_mention_order(self):
        got = expand_selection("dls,snoop:*,mesi,directory")
        assert got == ("dls", "mesi-snoop", "moesi-snoop", "directory")

    def test_sequence_input(self):
        assert expand_selection(["providers", "arin"]) == (
            "dico-providers", "dico-arin",
        )

    def test_unknown_family_glob(self):
        with pytest.raises(ValueError, match="unknown protocol family"):
            expand_selection("token-ring:*")

    def test_unknown_token(self):
        with pytest.raises(ValueError, match="unknown protocol"):
            expand_selection("directory,mosi")

    def test_empty_selection(self):
        with pytest.raises(ValueError, match="empty protocol selection"):
            expand_selection("")


class TestCompatView:
    def test_mapping_protocol(self):
        assert set(PROTOCOLS) == set(protocol_names())
        assert len(PROTOCOLS) == len(protocol_names())
        assert PROTOCOLS["dico"].name == "dico"

    def test_alias_lookup_through_view(self):
        assert PROTOCOLS["mesi"] is PROTOCOLS["mesi-snoop"]

    def test_view_is_immutable(self):
        with pytest.raises(TypeError, match="read-only"):
            PROTOCOLS["x"] = object
        with pytest.raises(TypeError, match="read-only"):
            del PROTOCOLS["dico"]


def test_markdown_table_covers_every_protocol():
    table = protocol_table_markdown()
    for name in protocol_names():
        assert f"`{name}`" in table
    assert "bus" in table and "object engine" in table


def test_readme_table_matches_registry():
    """The README's protocol table is generated from the registry —
    regenerate the block between the markers when this fails."""
    from pathlib import Path

    readme = Path(__file__).resolve().parents[2] / "README.md"
    text = readme.read_text()
    start = text.index("<!-- protocol-table:start -->")
    end = text.index("<!-- protocol-table:end -->")
    block = text[start:end].splitlines()[1:]
    assert "\n".join(line for line in block if line) == (
        protocol_table_markdown()
    )
