"""Unit tests for GenPo/ProPo pointer arithmetic."""

import pytest

from repro.core.area import AreaMap
from repro.core.pointers import GenPo, ProPo, genpo_bits, propo_bits


def test_paper_pointer_widths():
    # Sec. V-B: 6-bit GenPo for 64 tiles, 4-bit ProPo for 16-tile areas
    assert genpo_bits(64) == 6
    assert propo_bits(16) == 4


def test_widths_across_scales():
    assert genpo_bits(2) == 1
    assert genpo_bits(128) == 7
    assert genpo_bits(1024) == 10
    assert propo_bits(1) == 0  # degenerate single-tile area
    assert propo_bits(2) == 1
    assert propo_bits(512) == 9


def test_width_validation():
    with pytest.raises(ValueError):
        genpo_bits(0)
    with pytest.raises(ValueError):
        propo_bits(0)


class TestGenPo:
    def test_set_clear_valid(self):
        p = GenPo(n_tiles=64)
        assert not p.valid
        p.set(42)
        assert p.valid and p.tile == 42 and p.encode() == 42
        p.clear()
        assert not p.valid and p.encode() == 0

    def test_range_checked(self):
        p = GenPo(n_tiles=16)
        with pytest.raises(ValueError):
            p.set(16)

    def test_bits(self):
        assert GenPo(n_tiles=64).bits == 6


class TestProPo:
    def test_points_within_its_area(self):
        areas = AreaMap(8, 8, 4)
        p = ProPo(areas=areas, area=3)
        tile = areas.tiles_of(3)[5]
        p.set_tile(tile)
        assert p.valid
        assert p.tile == tile
        assert p.local_index == 5

    def test_rejects_foreign_tiles(self):
        areas = AreaMap(8, 8, 4)
        p = ProPo(areas=areas, area=0)
        with pytest.raises(ValueError):
            p.set_tile(63)  # tile of area 3

    def test_bits_and_clear(self):
        areas = AreaMap(8, 8, 4)
        p = ProPo(areas=areas, area=0)
        assert p.bits == 4
        assert p.tile is None
        p.set_tile(0)
        p.clear()
        assert not p.valid
