"""Unit tests for the alternative sharing codes (Sec. II-A extension)."""

import pytest

from repro.core.sharingcodes import (
    BroadcastCode,
    CoarseVector,
    FullMap,
    LimitedPointers,
    make_sharing_code,
)


class TestFullMap:
    def test_exact(self):
        code = FullMap(64)
        assert code.bits == 64
        assert code.targets({1, 17, 63}) == frozenset({1, 17, 63})
        assert code.overshoot({1, 17, 63}) == 0

    def test_empty(self):
        assert FullMap(16).targets(set()) == frozenset()


class TestCoarseVector:
    def test_bits(self):
        assert CoarseVector(64, group_size=4).bits == 16
        assert CoarseVector(64, group_size=8).bits == 8
        assert CoarseVector(10, group_size=4).bits == 3  # ragged tail

    def test_over_approximates_whole_groups(self):
        code = CoarseVector(16, group_size=4)
        assert code.targets({5}) == frozenset({4, 5, 6, 7})
        assert code.overshoot({5}) == 3
        assert code.targets({4, 5, 6, 7}) == frozenset({4, 5, 6, 7})

    def test_ragged_last_group(self):
        code = CoarseVector(10, group_size=4)
        assert code.targets({9}) == frozenset({8, 9})

    def test_superset_property(self):
        code = CoarseVector(32, group_size=4)
        sharers = {0, 9, 31}
        assert set(sharers) <= set(code.targets(sharers))


class TestLimitedPointers:
    def test_bits(self):
        code = LimitedPointers(64, n_pointers=2)
        assert code.pointer_bits == 6
        assert code.bits == 2 * 7 + 1

    def test_exact_below_capacity(self):
        code = LimitedPointers(64, n_pointers=2)
        assert code.targets({3, 40}) == frozenset({3, 40})
        assert code.overshoot({3, 40}) == 0

    def test_broadcast_on_overflow(self):
        code = LimitedPointers(8, n_pointers=2)
        assert code.targets({1, 2, 3}) == frozenset(range(8))
        assert code.overshoot({1, 2, 3}) == 5


class TestBroadcastCode:
    def test_minimal_storage_maximal_traffic(self):
        code = BroadcastCode(64)
        assert code.bits == 1
        assert code.targets(set()) == frozenset()
        assert code.targets({5}) == frozenset(range(64))


def test_factory():
    assert isinstance(make_sharing_code("full-map", 8), FullMap)
    assert isinstance(make_sharing_code("coarse", 8, group_size=2), CoarseVector)
    assert isinstance(make_sharing_code("limited", 8), LimitedPointers)
    assert isinstance(make_sharing_code("broadcast", 8), BroadcastCode)
    with pytest.raises(ValueError):
        make_sharing_code("chained", 8)


def test_validation():
    with pytest.raises(ValueError):
        FullMap(0)
    with pytest.raises(ValueError):
        CoarseVector(8, group_size=0)
    with pytest.raises(ValueError):
        LimitedPointers(8, n_pointers=0)
    with pytest.raises(ValueError):
        FullMap(8).targets({8})


def test_storage_vs_precision_tradeoff():
    """The Sec. II-A trade-off: less storage, more over-invalidation."""
    n = 64
    sharers = {1, 2, 3, 40}
    full = FullMap(n)
    coarse = CoarseVector(n, group_size=4)
    limited = LimitedPointers(n, n_pointers=2)
    bcast = BroadcastCode(n)
    assert full.bits > coarse.bits > limited.bits > bcast.bits
    assert (
        full.overshoot(sharers)
        < coarse.overshoot(sharers)
        < bcast.overshoot(sharers)
    )
    assert limited.overshoot(sharers) == 60  # overflowed
