"""Unit tests for the L1C$ supplier-prediction cache (Fig. 5)."""

from repro.core.predcache import PredictionCache


def make() -> PredictionCache:
    return PredictionCache(owner_tile=0, n_entries=16, assoc=4)


def test_no_prediction_initially():
    pc = make()
    assert pc.predict(0x10) is None
    assert pc.stats.lookups == 1
    assert pc.stats.hits == 0


def test_update_then_predict():
    pc = make()
    pc.update(0x10, supplier=7)
    assert pc.predict(0x10) == 7
    assert pc.stats.hit_ratio == 1.0


def test_self_pointer_is_discarded():
    pc = make()
    pc.update(0x10, supplier=0)  # we are tile 0 ourselves
    assert pc.predict(0x10) is None


def test_resident_pointer_lives_in_the_l1_entry():
    pc = make()
    pc.block_cached(0x10, supplier=5)
    assert pc.resident_prediction(0x10) == 5
    # the dedicated array holds nothing for a resident block
    assert pc.array.peek(0x10) is None
    assert pc.predict(0x10) == 5


def test_eviction_moves_pointer_to_dedicated_array():
    """Sec. IV: 'when a block is evicted from the L1 cache, the identity
    of the supplier is retained in the L1C$'."""
    pc = make()
    pc.block_cached(0x10, supplier=5)
    pc.block_evicted(0x10)
    assert pc.resident_prediction(0x10) is None
    assert pc.array.peek(0x10) == 5
    assert pc.predict(0x10) == 5


def test_update_of_resident_block_stays_resident():
    pc = make()
    pc.block_cached(0x10, supplier=5)
    pc.update(0x10, supplier=9)  # e.g. an invalidation hint
    assert pc.resident_prediction(0x10) == 9
    assert pc.array.peek(0x10) is None


def test_caching_without_supplier_clears_prediction():
    pc = make()
    pc.update(0x10, supplier=3)
    pc.block_cached(0x10, supplier=None)  # we became the owner
    pc.block_evicted(0x10)
    assert pc.predict(0x10) is None


def test_forget():
    pc = make()
    pc.update(0x10, supplier=3)
    pc.forget(0x10)
    assert pc.predict(0x10) is None


def test_dedicated_array_capacity_evicts_old_predictions():
    pc = PredictionCache(owner_tile=0, n_entries=4, assoc=4)
    for b in range(5):
        pc.update(b, supplier=1)
    present = [b for b in range(5) if pc.array.peek(b) is not None]
    assert len(present) == 4  # one prediction was displaced


def test_stats_track_updates():
    pc = make()
    pc.update(1, 2)
    pc.update(2, 3)
    assert pc.stats.updates == 2
