"""Unit tests for the coherence-invariant checker."""

import pytest

from repro.core.checker import CoherenceChecker, CoherenceViolation


def test_versions_start_at_zero():
    c = CoherenceChecker()
    assert c.current_version(0x10) == 0
    c.check_read(0x10, 0)  # fresh block readable at version 0


def test_commit_write_increments():
    c = CoherenceChecker()
    assert c.commit_write(0x10) == 1
    assert c.commit_write(0x10) == 2
    assert c.current_version(0x10) == 2
    assert c.writes_committed == 2


def test_stale_read_raises():
    c = CoherenceChecker()
    c.commit_write(0x10)
    with pytest.raises(CoherenceViolation, match="stale read"):
        c.check_read(0x10, 0)
    c.check_read(0x10, 1)
    assert c.reads_checked == 2  # the failed check also counted


def test_copy_set_single_owner_ok():
    c = CoherenceChecker()
    c.commit_write(1)
    c.check_copy_set(1, [("L1[0]", "M", 1)])
    c.check_copy_set(1, [("L1[0]", "O", 1), ("L1[1]", "S", 1)])
    c.check_copy_set(1, [("L2[5]", "L2_OWNER", 1), ("L1[1]", "S", 1)])


def test_multiple_owners_violate():
    c = CoherenceChecker()
    with pytest.raises(CoherenceViolation, match="multiple owners"):
        c.check_copy_set(1, [("L1[0]", "M", 0), ("L1[1]", "O", 0)])
    with pytest.raises(CoherenceViolation, match="multiple owners"):
        c.check_copy_set(1, [("L1[0]", "E", 0), ("L2[5]", "L2_OWNER", 0)])


def test_exclusive_with_other_copies_violates():
    c = CoherenceChecker()
    with pytest.raises(CoherenceViolation, match="exclusive"):
        c.check_copy_set(1, [("L1[0]", "M", 0), ("L1[1]", "S", 0)])


def test_stale_copy_violates():
    c = CoherenceChecker()
    c.commit_write(1)
    with pytest.raises(CoherenceViolation, match="stale"):
        c.check_copy_set(1, [("L1[0]", "S", 0)])


def test_providers_and_sharers_coexist():
    c = CoherenceChecker()
    c.check_copy_set(
        1,
        [
            ("L1[0]", "O", 0),
            ("L1[17]", "P", 0),
            ("L1[18]", "S", 0),
            ("L1[33]", "P", 0),
        ],
    )


def test_empty_copy_set_is_fine():
    CoherenceChecker().check_copy_set(1, [])
