"""Unit tests for the coherence-invariant checker."""

import pytest

from repro.core.checker import CoherenceChecker, CoherenceViolation


def test_versions_start_at_zero():
    c = CoherenceChecker()
    assert c.current_version(0x10) == 0
    c.check_read(0x10, 0)  # fresh block readable at version 0


def test_commit_write_increments():
    c = CoherenceChecker()
    assert c.commit_write(0x10) == 1
    assert c.commit_write(0x10) == 2
    assert c.current_version(0x10) == 2
    assert c.writes_committed == 2


def test_stale_read_raises():
    c = CoherenceChecker()
    c.commit_write(0x10)
    with pytest.raises(CoherenceViolation, match="stale read"):
        c.check_read(0x10, 0)
    c.check_read(0x10, 1)
    assert c.reads_checked == 2  # the failed check also counted


def test_copy_set_single_owner_ok():
    c = CoherenceChecker()
    c.commit_write(1)
    c.check_copy_set(1, [("L1[0]", "M", 1)])
    c.check_copy_set(1, [("L1[0]", "O", 1), ("L1[1]", "S", 1)])
    c.check_copy_set(1, [("L2[5]", "L2_OWNER", 1), ("L1[1]", "S", 1)])


def test_multiple_owners_violate():
    c = CoherenceChecker()
    with pytest.raises(CoherenceViolation, match="multiple owners"):
        c.check_copy_set(1, [("L1[0]", "M", 0), ("L1[1]", "O", 0)])
    with pytest.raises(CoherenceViolation, match="multiple owners"):
        c.check_copy_set(1, [("L1[0]", "E", 0), ("L2[5]", "L2_OWNER", 0)])


def test_exclusive_with_other_copies_violates():
    c = CoherenceChecker()
    with pytest.raises(CoherenceViolation, match="exclusive"):
        c.check_copy_set(1, [("L1[0]", "M", 0), ("L1[1]", "S", 0)])


def test_stale_copy_violates():
    c = CoherenceChecker()
    c.commit_write(1)
    with pytest.raises(CoherenceViolation, match="stale"):
        c.check_copy_set(1, [("L1[0]", "S", 0)])


def test_providers_and_sharers_coexist():
    c = CoherenceChecker()
    c.check_copy_set(
        1,
        [
            ("L1[0]", "O", 0),
            ("L1[17]", "P", 0),
            ("L1[18]", "S", 0),
            ("L1[33]", "P", 0),
        ],
    )


def test_empty_copy_set_is_fine():
    CoherenceChecker().check_copy_set(1, [])


# ---------------------------------------------------------------------------
# violation diagnostics

def test_violation_carries_structured_context():
    c = CoherenceChecker()
    c.bind("dico", lambda block: [("L1[3]", "M", 0)])
    c.commit_write(7)
    with pytest.raises(CoherenceViolation) as exc:
        c.check_read(7, 0, "L1[3]", now=123, tile=3)
    v = exc.value
    assert v.protocol == "dico"
    assert v.cycle == 123
    assert v.tile == 3
    assert v.block == 7
    assert v.snapshot == [("L1[3]", "M", 0)]
    msg = str(v)
    assert "protocol=dico" in msg and "cycle=123" in msg
    assert "L1[3]:M@v0" in msg
    doc = v.to_dict()
    assert doc["protocol"] == "dico" and doc["cycle"] == 123


def test_snapshot_failure_never_masks_the_violation():
    c = CoherenceChecker()

    def broken(block):
        raise RuntimeError("snapshot exploded")

    c.bind("vh", broken)
    c.commit_write(1)
    with pytest.raises(CoherenceViolation) as exc:
        c.check_read(1, 0, now=5)
    assert exc.value.snapshot is None


def test_commit_sink_records_blocks():
    c = CoherenceChecker()
    sink = []
    c.record_commits(sink)
    c.commit_write(4)
    c.commit_write(9)
    c.commit_write(4)
    assert sink == [4, 9, 4]
    c.record_commits(None)
    c.commit_write(4)
    assert sink == [4, 9, 4]


# ---------------------------------------------------------------------------
# protocol edge cases (driven through the real protocols)

from repro.sim.chip import PROTOCOLS, make_protocol  # noqa: E402
from repro.sim.config import small_test_chip  # noqa: E402
from repro.verify.differential import run_trace  # noqa: E402
from repro.verify.fuzzer import SET_STRIDE, Op  # noqa: E402

TINY = small_test_chip(4, 4, 4, l1_kb=1, l2_kb=4)


@pytest.mark.parametrize("protocol", sorted(PROTOCOLS))
def test_dirty_owner_eviction_preserves_version(protocol):
    """Evicting a dirty owner must push the current version home: a
    later reader (and the per-block audit) sees no staleness."""
    victim = 0
    # fill the victim's L1 set past associativity with dirty lines
    conflict = [victim + k * SET_STRIDE for k in range(6)]
    ops = [Op(0, b, True) for b in conflict]
    # now make every other tile read the (long-evicted) first block
    ops += [Op(t, victim, False) for t in range(1, TINY.n_tiles)]
    result = run_trace(protocol, ops, TINY)
    assert result.violation is None, result.violation


@pytest.mark.parametrize("protocol", sorted(PROTOCOLS))
def test_dedup_readonly_page_broken_by_write(protocol):
    """Dedup'd read-only sharing then a write (the CoW-break shape):
    the write must invalidate/update every one of the many sharers."""
    block = 3
    ops = [Op(t, block, False) for t in range(TINY.n_tiles)]   # wide sharing
    ops += [Op(5, block, True)]                                 # the break
    ops += [Op(t, block, False) for t in range(TINY.n_tiles)]   # re-read
    ops += [Op(9, block, True)]                                 # and again
    ops += [Op(t, block, False) for t in range(TINY.n_tiles)]
    result = run_trace(protocol, ops, TINY)
    assert result.violation is None, result.violation
    assert result.versions[-1] == 2
