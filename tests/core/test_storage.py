"""Validation of the storage model against Tables V and VII.

These tests compare our closed-form bit counts against the numbers
printed in the paper.  Table V must match exactly; Table VII matches
within rounding except two degenerate DiCo-Providers corner cells
(documented in EXPERIMENTS.md).
"""

import pytest

from repro.core.storage import (
    PROTOCOL_NAMES,
    overhead_percent,
    overhead_table,
    storage_breakdown,
    tag_bits,
)
from repro.sim.config import DEFAULT_CHIP


class TestTagWidths:
    """Sec. V-B: L1Tag 25, L2Tag 17, DirTag 17, L1CTag 23, L2CTag 17."""

    def test_all_five_tag_types(self):
        assert tag_bits(DEFAULT_CHIP, "l1") == 25
        assert tag_bits(DEFAULT_CHIP, "l2") == 17
        assert tag_bits(DEFAULT_CHIP, "dir") == 17
        assert tag_bits(DEFAULT_CHIP, "l1c") == 23
        assert tag_bits(DEFAULT_CHIP, "l2c") == 17

    def test_unknown_structure(self):
        with pytest.raises(ValueError):
            tag_bits(DEFAULT_CHIP, "l3")


class TestTableV:
    """Per-tile coherence storage (Table V)."""

    def test_directory_structures(self):
        b = storage_breakdown("directory")
        assert b.structure("l2_dir").total_kb == 128.0
        assert b.structure("dir_cache").total_kb == 21.75
        assert b.coherence_kb == 149.75

    def test_dico_structures(self):
        b = storage_breakdown("dico")
        assert b.structure("l1_dir").total_kb == 16.0
        assert b.structure("l2_dir").total_kb == 128.0
        assert b.structure("l1c").total_kb == 7.5
        assert b.structure("l2c").total_kb == 6.0

    def test_providers_structures(self):
        b = storage_breakdown("dico-providers")
        # 2 bytes + 3 ProPos + 3 valid bits = 31 bits per L1 entry
        assert b.structure("l1_dir").entry_bits == 31
        assert b.structure("l1_dir").total_kb == 7.75
        # 4 ProPos + 4 valid bits = 20 bits per L2 entry
        assert b.structure("l2_dir").entry_bits == 20
        assert b.structure("l2_dir").total_kb == 40.0

    def test_arin_structures(self):
        b = storage_breakdown("dico-arin")
        assert b.structure("l1_dir").entry_bits == 16
        assert b.structure("l1_dir").total_kb == 4.0
        # max(nta + log2(na), na*ProPo) = max(18, 16) = 18 bits
        assert b.structure("l2_dir").entry_bits == 18
        assert b.structure("l2_dir").total_kb == 36.0

    def test_data_arrays_match_table_v(self):
        b = storage_breakdown("directory")
        # L1: 134.25 KB, L2: 1058 KB including tags
        l1 = b.structure("l1_tags").total_kb + b.structure("l1_data").total_kb
        l2 = b.structure("l2_tags").total_kb + b.structure("l2_data").total_kb
        assert l1 == pytest.approx(134.25)
        assert l2 == pytest.approx(1058.0)

    @pytest.mark.parametrize(
        "protocol,expected",
        [
            ("directory", 12.56),
            ("dico", 13.21),
            ("dico-providers", 5.14),
            ("dico-arin", 4.49),
        ],
    )
    def test_overhead_percentages(self, protocol, expected):
        assert overhead_percent(protocol) == pytest.approx(expected, abs=0.01)

    def test_headline_reductions(self):
        """Abstract: 59-64% reduction in directory information."""
        base = storage_breakdown("directory").coherence_kb
        prov = storage_breakdown("dico-providers").coherence_kb
        arin = storage_breakdown("dico-arin").coherence_kb
        assert 1 - prov / base == pytest.approx(0.59, abs=0.02)
        assert 1 - arin / base == pytest.approx(0.64, abs=0.02)


class TestTableVII:
    """Storage overhead vs core count and area count."""

    @pytest.fixture(scope="class")
    def table(self):
        return overhead_table()

    @pytest.mark.parametrize(
        "cores,areas,protocol,expected,tol",
        [
            # directory / dico columns are flat in the area count
            (64, 4, "directory", 12.6, 0.1),
            (128, 4, "directory", 24.7, 0.1),
            (256, 4, "directory", 48.9, 0.2),
            (512, 4, "directory", 97.5, 0.2),
            (1024, 4, "directory", 195.0, 0.5),
            (64, 4, "dico", 13.2, 0.2),
            (1024, 4, "dico", 195.6, 0.5),
            # DiCo-Providers grows with the area count
            (64, 2, "dico-providers", 4.0, 0.2),
            (64, 4, "dico-providers", 5.1, 0.1),
            (64, 8, "dico-providers", 7.2, 0.2),
            (64, 16, "dico-providers", 10.0, 0.3),
            (128, 2, "dico-providers", 5.0, 0.1),
            (256, 8, "dico-providers", 10.6, 0.3),
            (1024, 4, "dico-providers", 13.1, 0.3),
            # DiCo-Arin is smallest around na = ntc/nta sweet spots
            (64, 2, "dico-arin", 7.3, 0.1),
            (64, 4, "dico-arin", 4.5, 0.1),
            (64, 8, "dico-arin", 5.3, 0.1),
            (64, 64, "dico-arin", 2.3, 0.1),
            (128, 4, "dico-arin", 7.5, 0.1),
            (256, 8, "dico-arin", 8.5, 0.2),
            (512, 8, "dico-arin", 13.7, 0.2),
            (1024, 16, "dico-arin", 18.6, 0.3),
        ],
    )
    def test_cells_match_paper(self, table, cores, areas, protocol, expected, tol):
        assert table[cores][areas][protocol] == pytest.approx(expected, abs=tol)

    def test_directory_overhead_independent_of_areas(self, table):
        row = table[64]
        values = {row[a]["directory"] for a in row}
        assert len(values) == 1

    def test_area_protocols_always_beat_dico(self, table):
        for cores, per_area in table.items():
            for areas, cells in per_area.items():
                assert cells["dico-arin"] <= cells["dico"] + 1e-9
                assert cells["dico-providers"] <= cells["dico"] + 1e-9


def test_unknown_protocol_rejected():
    with pytest.raises(ValueError):
        storage_breakdown("mesi")


def test_breakdown_structure_lookup():
    b = storage_breakdown("dico")
    with pytest.raises(KeyError):
        b.structure("nope")
    tags = {s.name for s in b.tag_structures()}
    assert "l1_tags" in tags and "l1_dir" in tags and "l1c" in tags
