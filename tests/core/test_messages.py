"""Unit tests for the coherence message vocabulary."""

import pytest

from repro.core.messages import (
    CONTROL_MESSAGES,
    DATA_MESSAGES,
    MessageType,
    flits_for,
)


def test_every_message_type_is_classified():
    names = [
        getattr(MessageType, attr)
        for attr in dir(MessageType)
        if not attr.startswith("_")
    ]
    for name in names:
        assert name in CONTROL_MESSAGES or name in DATA_MESSAGES, name


def test_no_message_is_both():
    assert not (CONTROL_MESSAGES & DATA_MESSAGES)


def test_flits_for_table_iii_sizes():
    # Table III: control 1 flit, data 5 flits (16 B header + 64 B block)
    assert flits_for(MessageType.GETS, 1, 5) == 1
    assert flits_for(MessageType.INV, 1, 5) == 1
    assert flits_for(MessageType.DATA, 1, 5) == 5
    assert flits_for(MessageType.WRITEBACK, 1, 5) == 5
    assert flits_for(MessageType.DATA_OWNER, 1, 5) == 5


def test_requests_and_acks_are_control():
    for m in (
        MessageType.GETS,
        MessageType.GETX,
        MessageType.FWD_GETS,
        MessageType.INV_ACK,
        MessageType.CHANGE_OWNER,
        MessageType.CHANGE_PROVIDER,
        MessageType.NO_PROVIDER,
        MessageType.INV_BCAST,
        MessageType.UNBLOCK_BCAST,
        MessageType.HINT,
    ):
        assert m in CONTROL_MESSAGES


def test_unknown_type_rejected():
    with pytest.raises(ValueError):
        flits_for("Bogus", 1, 5)
