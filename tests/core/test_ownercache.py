"""Unit tests for the L2C$ owner-pointer cache."""

from repro.core.ownercache import OwnerCache


def make(entries: int = 16) -> OwnerCache:
    return OwnerCache(home_tile=0, n_entries=entries, assoc=4)


def test_set_and_get_owner():
    oc = make()
    assert oc.owner_of(0x10) is None
    assert oc.set_owner(0x10, 5) is None
    assert oc.owner_of(0x10) == 5
    assert oc.peek_owner(0x10) == 5


def test_update_existing_pointer_in_place():
    oc = make()
    oc.set_owner(0x10, 5)
    assert oc.set_owner(0x10, 9) is None  # no eviction
    assert oc.owner_of(0x10) == 9


def test_clear():
    oc = make()
    oc.set_owner(0x10, 5)
    oc.clear(0x10)
    assert oc.owner_of(0x10) is None


def test_capacity_eviction_reports_victim():
    oc = OwnerCache(home_tile=0, n_entries=4, assoc=4)
    for b in range(4):
        assert oc.set_owner(b, b + 10) is None
    victim = oc.set_owner(99, 50)
    assert victim is not None
    vblock, vowner = victim
    assert vblock in range(4)
    assert vowner == vblock + 10
    assert oc.forced_relinquishes == 1
    assert oc.owner_of(vblock) is None


def test_transfer_lock():
    """Sec. IV-A: ownership cannot move again until the home acks."""
    oc = make()
    oc.set_owner(0x10, 5)
    assert not oc.is_transfer_locked(0x10)
    oc.lock_transfer(0x10)
    assert oc.is_transfer_locked(0x10)
    oc.unlock_transfer(0x10)
    assert not oc.is_transfer_locked(0x10)


def test_lock_cleared_on_owner_update():
    oc = make()
    oc.set_owner(0x10, 5)
    oc.lock_transfer(0x10)
    oc.set_owner(0x10, 7)
    assert not oc.is_transfer_locked(0x10)


def test_index_shift_spreads_bank_local_blocks():
    oc = OwnerCache(home_tile=0, n_entries=16, assoc=4, index_shift=6)
    # blocks all homed at tile 0 of a 64-tile chip (≡ 0 mod 64)
    for i in range(8):
        assert oc.set_owner(i * 64, 1) is None  # no premature eviction
