"""Unit tests for replacement policies."""

import pytest

from repro.cache.replacement import (
    FIFO,
    LRU,
    RandomRepl,
    TreePLRU,
    make_policy,
)


class TestLRU:
    def test_victim_is_least_recently_used(self):
        p = LRU(4)
        for way in (0, 1, 2, 3):
            p.touch(way)
        assert p.victim() == 0
        p.touch(0)
        assert p.victim() == 1

    def test_reset_demotes_to_lru(self):
        p = LRU(4)
        for way in (0, 1, 2, 3):
            p.touch(way)
        p.reset(3)  # invalidated way becomes the next victim
        assert p.victim() == 3


class TestFIFO:
    def test_hit_does_not_change_order(self):
        p = FIFO(3)
        for way in (0, 1, 2):
            p.touch(way)  # fills
        p.touch(0)  # hit: no reordering
        assert p.victim() == 0

    def test_refill_after_reset_goes_to_back(self):
        p = FIFO(3)
        for way in (0, 1, 2):
            p.touch(way)
        p.reset(1)
        p.touch(1)  # re-filled: now newest
        assert p.victim() == 0


class TestTreePLRU:
    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            TreePLRU(3)

    def test_victim_avoids_recent_touches(self):
        p = TreePLRU(4)
        p.touch(0)
        assert p.victim() != 0
        p.touch(p.victim())
        v = p.victim()
        p.touch(v)
        assert p.victim() != v

    def test_covers_all_ways_eventually(self):
        p = TreePLRU(8)
        seen = set()
        for _ in range(64):
            v = p.victim()
            seen.add(v)
            p.touch(v)
        assert seen == set(range(8))


class TestRandom:
    def test_deterministic_for_seed(self):
        a = RandomRepl(8, seed=1)
        b = RandomRepl(8, seed=1)
        assert [a.victim() for _ in range(20)] == [b.victim() for _ in range(20)]

    def test_victims_in_range(self):
        p = RandomRepl(4, seed=0)
        assert all(0 <= p.victim() < 4 for _ in range(50))


def test_factory():
    assert isinstance(make_policy("lru", 4), LRU)
    assert isinstance(make_policy("fifo", 4), FIFO)
    assert isinstance(make_policy("plru", 4), TreePLRU)
    assert isinstance(make_policy("random", 4), RandomRepl)
    with pytest.raises(ValueError):
        make_policy("mru", 4)


def test_single_way_policies():
    for name in ("lru", "fifo", "plru", "random"):
        p = make_policy(name, 1)
        p.touch(0)
        assert p.victim() == 0
