"""Unit tests for the set-associative cache array."""

import pytest

from repro.cache.cache import SetAssocCache


def test_insert_and_lookup():
    c = SetAssocCache(4, 2)
    assert c.insert(0x10, "a") is None
    assert c.lookup(0x10) == "a"
    assert c.lookup(0x20) is None
    assert len(c) == 1
    assert 0x10 in c and 0x20 not in c


def test_insert_overwrites_existing():
    c = SetAssocCache(4, 2)
    c.insert(5, "old")
    assert c.insert(5, "new") is None
    assert c.lookup(5) == "new"
    assert len(c) == 1


def test_eviction_returns_lru_victim():
    c = SetAssocCache(1, 2)
    c.insert(0, "a")
    c.insert(1, "b")
    c.lookup(0)  # 0 is now MRU
    victim = c.insert(2, "c")
    assert victim == (1, "b")
    assert 0 in c and 2 in c and 1 not in c


def test_victim_for_previews_without_evicting():
    c = SetAssocCache(1, 2)
    c.insert(0, "a")
    assert c.victim_for(1) is None  # free way available
    c.insert(1, "b")
    assert c.victim_for(0) is None  # already present
    assert c.victim_for(2) == (0, "a")
    assert 0 in c  # nothing was evicted


def test_invalidate():
    c = SetAssocCache(2, 2)
    c.insert(0, "a")
    assert c.invalidate(0) == "a"
    assert c.invalidate(0) is None
    assert len(c) == 0


def test_invalidated_way_is_preferred_for_refill():
    c = SetAssocCache(1, 2)
    c.insert(0, "a")
    c.insert(1, "b")
    c.invalidate(0)
    assert c.insert(2, "c") is None  # reuses the freed way, no eviction


def test_set_mapping_uses_low_bits():
    c = SetAssocCache(4, 1)
    assert c.set_of(0) == 0
    assert c.set_of(5) == 1
    assert c.set_of(7) == 3


def test_index_shift_for_home_banks():
    # blocks homed at one bank share their low bits; the shift must
    # spread them over the sets
    c = SetAssocCache(4, 1, index_shift=6)
    blocks = [7 + i * 64 for i in range(4)]  # all ≡ 7 (mod 64)
    sets = {c.set_of(b) for b in blocks}
    assert sets == {0, 1, 2, 3}


def test_stats_accounting():
    c = SetAssocCache(1, 1)
    c.lookup(0)  # miss
    c.insert(0, "a")  # tag write
    c.lookup(0)  # hit
    c.insert(1, "b")  # eviction
    st = c.stats
    assert st.misses == 1
    assert st.hits == 1
    assert st.tag_reads == 2
    assert st.tag_writes == 2
    assert st.evictions == 1


def test_invalidate_counts_tag_write():
    c = SetAssocCache(1, 1)
    c.insert(0, "a")
    before = c.stats.tag_writes
    c.invalidate(0)
    assert c.stats.tag_writes == before + 1


def test_peek_does_not_touch_lru_or_stats():
    c = SetAssocCache(1, 2)
    c.insert(0, "a")
    c.insert(1, "b")
    reads = c.stats.tag_reads
    assert c.peek(0) == "a"
    assert c.stats.tag_reads == reads
    # LRU untouched: 0 is still the victim
    assert c.victim_for(2) == (0, "a")


def test_iteration_yields_all_frames():
    c = SetAssocCache(4, 2)
    inserted = {(i, f"v{i}") for i in range(8)}
    for b, v in inserted:
        c.insert(b, v)
    assert set(c) == inserted


def test_validation():
    with pytest.raises(ValueError):
        SetAssocCache(3, 2)
    with pytest.raises(ValueError):
        SetAssocCache(4, 0)
    with pytest.raises(ValueError):
        SetAssocCache(4, 2, index_shift=-1)


def test_capacity_and_full_behavior():
    c = SetAssocCache(2, 2)
    assert c.capacity == 4
    for b in range(8):
        c.insert(b, b)
    assert len(c) == 4  # at capacity, evictions happened
