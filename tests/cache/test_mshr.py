"""Unit tests for the MSHR table."""

import pytest

from repro.cache.mshr import MshrEntry, MshrFullError, MshrTable


def test_allocate_and_busy_until():
    t = MshrTable(4)
    t.allocate(0x10, busy_until=100, now=0)
    assert 0x10 in t
    assert t.busy_until(0x10, now=50) == 100
    assert t.busy_until(0x10, now=150) == 150
    assert t.busy_until(0x99, now=7) == 7


def test_reallocate_extends_busy_window():
    t = MshrTable(4)
    t.allocate(1, busy_until=100, now=0)
    t.allocate(1, busy_until=80, now=0)  # shorter: no shrink
    assert t.busy_until(1, 0) == 100
    t.allocate(1, busy_until=120, now=0)
    assert t.busy_until(1, 0) == 120
    assert len(t) == 1


def test_full_raises_and_counts():
    t = MshrTable(2)
    t.allocate(1, 100, now=0)
    t.allocate(2, 100, now=0)
    with pytest.raises(MshrFullError):
        t.allocate(3, 100, now=0)
    assert t.full_stalls == 1


def test_expired_entries_are_garbage_collected():
    t = MshrTable(2)
    t.allocate(1, busy_until=10, now=0)
    t.allocate(2, busy_until=100, now=0)
    # at time 50, entry 1 has expired: room for a new one
    t.allocate(3, busy_until=200, now=50)
    assert 1 not in t
    assert len(t) == 2


def test_next_free_time():
    t = MshrTable(2)
    assert t.next_free_time(0) == 0
    t.allocate(1, 30, now=0)
    t.allocate(2, 50, now=0)
    assert t.next_free_time(0) == 30
    assert t.next_free_time(40) == 40  # entry 1 expired


def test_release():
    t = MshrTable(1)
    t.allocate(1, 100, now=0)
    t.release(1)
    assert 1 not in t
    t.release(1)  # idempotent


class TestDualAckCounters:
    """Sec. IV-A: separate provider and sharer ack counters."""

    def test_provider_ack_adds_its_sharers(self):
        e = MshrEntry(block=1, busy_until=0)
        e.pending_provider_acks = 2
        assert not e.invalidation_done
        e.ack_from_provider(sharers_in_area=3)
        assert e.pending_provider_acks == 1
        assert e.pending_sharer_acks == 3
        e.ack_from_provider(sharers_in_area=0)
        for _ in range(3):
            e.ack_from_sharer()
        assert e.invalidation_done

    def test_unexpected_acks_rejected(self):
        e = MshrEntry(block=1, busy_until=0)
        with pytest.raises(ValueError):
            e.ack_from_provider(0)
        with pytest.raises(ValueError):
            e.ack_from_sharer()


def test_validation():
    with pytest.raises(ValueError):
        MshrTable(0)
