"""Unit tests for the on-disk result cache."""

import json

from repro.stats.counters import RunStats
from repro.sweep.cache import ResultCache, code_fingerprint
from repro.sweep.spec import RunSpec


def dummy_stats(ops: int = 10) -> RunStats:
    stats = RunStats(protocol="dico", workload="radix")
    stats.operations = ops
    stats.l1_hits = 5 * ops
    stats.l1_misses = ops
    stats.miss_latency.add(17)
    stats.network.messages = 3
    return stats


SPEC = RunSpec(protocol="dico", workload="radix", seed=1)


def test_miss_then_hit(tmp_path):
    cache = ResultCache(tmp_path)
    assert cache.get(SPEC) is None
    cache.put(SPEC, dummy_stats(), elapsed_s=0.5)
    got = cache.get(SPEC)
    assert got is not None
    assert got.operations == 10
    assert got.miss_latency.maximum == 17
    assert cache.hits == 1 and cache.misses == 1
    assert len(cache) == 1


def test_key_depends_on_spec_and_code_version(tmp_path):
    cache = ResultCache(tmp_path)
    other_spec = RunSpec(protocol="dico", workload="radix", seed=2)
    assert cache.key_for(SPEC) != cache.key_for(other_spec)
    older = ResultCache(tmp_path, code_version="something-older")
    assert cache.key_for(SPEC) != older.key_for(SPEC)


def test_code_version_invalidates_entries(tmp_path):
    v1 = ResultCache(tmp_path, code_version="v1")
    v1.put(SPEC, dummy_stats(), elapsed_s=0.1)
    v2 = ResultCache(tmp_path, code_version="v2")
    assert v2.get(SPEC) is None
    assert v1.get(SPEC) is not None


def test_corrupt_entry_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(SPEC, dummy_stats(), elapsed_s=0.1)
    cache.path_for(SPEC).write_text("{ not json")
    assert cache.get(SPEC) is None


def test_corrupt_entry_quarantined_not_deleted(tmp_path, caplog):
    cache = ResultCache(tmp_path)
    cache.put(SPEC, dummy_stats(), elapsed_s=0.1)
    path = cache.path_for(SPEC)
    path.write_text("{ not json")
    with caplog.at_level("WARNING", logger="repro.sweep.cache"):
        assert cache.get(SPEC) is None
    quarantined = path.with_name(path.name + ".corrupt")
    assert quarantined.exists()  # evidence preserved, not deleted
    assert quarantined.read_text() == "{ not json"
    assert not path.exists()
    assert any("quarantin" in rec.message for rec in caplog.records)
    # the slot is reusable afterwards
    cache.put(SPEC, dummy_stats(7), elapsed_s=0.1)
    assert cache.get(SPEC).operations == 7


def test_checksum_mismatch_quarantined(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(SPEC, dummy_stats(), elapsed_s=0.1)
    path = cache.path_for(SPEC)
    doc = json.loads(path.read_text())
    doc["stats"]["operations"] = 999_999  # silent bit-rot
    path.write_text(json.dumps(doc))
    assert cache.get(SPEC) is None
    assert path.with_name(path.name + ".corrupt").exists()


def test_entries_carry_a_checksum(tmp_path):
    from repro.sweep.cache import stats_checksum

    cache = ResultCache(tmp_path)
    cache.put(SPEC, dummy_stats(), elapsed_s=0.1)
    doc = json.loads(cache.path_for(SPEC).read_text())
    assert doc["checksum"] == stats_checksum(doc["stats"])


def test_missing_file_is_a_plain_miss(tmp_path):
    cache = ResultCache(tmp_path)
    assert cache.get(SPEC) is None
    assert list(tmp_path.glob("*.corrupt")) == []


def test_entry_document_carries_spec_and_fingerprint(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(SPEC, dummy_stats(), elapsed_s=0.25)
    doc = json.loads(cache.path_for(SPEC).read_text())
    assert doc["spec"]["protocol"] == "dico"
    assert doc["code_version"] == code_fingerprint()
    assert doc["elapsed_s"] == 0.25
    assert doc["stats"]["operations"] == 10


def test_clear(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(SPEC, dummy_stats(), elapsed_s=0.1)
    assert cache.clear() == 1
    assert len(cache) == 0
    assert cache.get(SPEC) is None


def test_fingerprint_is_stable_within_a_process():
    assert code_fingerprint() == code_fingerprint()
    assert len(code_fingerprint()) == 64


# ------------------------------------------------------ health counters


def test_counters_track_hits_misses_quarantines(tmp_path):
    cache = ResultCache(tmp_path)
    assert cache.counters() == {"hits": 0, "misses": 0, "quarantined": 0}
    cache.get(SPEC)  # miss
    cache.put(SPEC, dummy_stats(), elapsed_s=0.1)
    cache.get(SPEC)  # hit
    cache.path_for(SPEC).write_text("{ torn")
    cache.get(SPEC)  # quarantine (counts as a miss too)
    counters = cache.counters()
    assert counters["hits"] == 1
    assert counters["misses"] == 2
    assert counters["quarantined"] == 1


# ------------------------------------------------- concurrent writers


def _race_writer(cache_dir, barrier, rounds):
    """Child process: race identical put() calls against siblings."""
    cache = ResultCache(cache_dir)
    for _ in range(rounds):
        barrier.wait()
        cache.put(SPEC, dummy_stats(), elapsed_s=0.1)


def test_concurrent_writers_same_fingerprint_never_tear(tmp_path):
    """N processes put() the same fingerprint simultaneously: the entry
    must always read back valid — one winner per round, no torn JSON,
    no quarantine events (atomic temp-file + rename discipline)."""
    import multiprocessing

    ctx = multiprocessing.get_context("fork")
    n_procs, rounds = 4, 8
    barrier = ctx.Barrier(n_procs)
    procs = [
        ctx.Process(
            target=_race_writer, args=(str(tmp_path), barrier, rounds)
        )
        for _ in range(n_procs)
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=60)
        assert p.exitcode == 0
    reader = ResultCache(tmp_path)
    got = reader.get(SPEC)
    assert got is not None and got.operations == 10
    assert reader.counters()["quarantined"] == 0
    assert list(tmp_path.glob("**/*.corrupt")) == []
    # exactly one entry file: concurrent writers converged on one key
    assert len(list(tmp_path.glob("**/*.json"))) == 1
