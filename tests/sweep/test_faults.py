"""Resilience tests: fault injection, retry/backoff, timeout, resume.

The central invariant (pinned here property-style with Hypothesis):
under ANY seeded fault plan, every sweep entry is either bit-identical
to its fault-free result or carries a structured ``FailureRecord`` —
faults never silently perturb statistics.
"""

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import (
    FailureRecord,
    FaultPlan,
    FaultPolicy,
    FaultRule,
    failure_summary,
    plan_from_env,
)
from repro.sim.config import small_test_chip
from repro.stats.io import stats_to_dict
from repro.sweep import (
    RunSpec,
    SweepExecutionError,
    SweepJournal,
    SweepRunner,
)
from repro.sweep.spec import config_to_dict

TINY = config_to_dict(small_test_chip())


def tiny_grid(protocols=("directory", "dico", "dico-providers")):
    return [
        RunSpec(
            protocol=p,
            workload="radix",
            seed=1,
            cycles=1_500,
            warmup=500,
            config=TINY,
        )
        for p in protocols
    ]


@pytest.fixture(scope="module")
def baseline():
    """Fault-free reference stats, keyed by spec fingerprint."""
    results = SweepRunner(jobs=1).run(tiny_grid())
    return {
        r.spec.fingerprint(): stats_to_dict(r.stats) for r in results
    }


# ---------------------------------------------------------------- plan


def test_rule_selection_is_deterministic():
    rule = FaultRule(kind="crash", rate=0.5)
    fps = [f"{i:064x}" for i in range(200)]
    picks = [rule.selects(seed=7, fingerprint=fp) for fp in fps]
    assert picks == [rule.selects(seed=7, fingerprint=fp) for fp in fps]
    # a 0.5 rate hits roughly half, never all or none
    assert 40 < sum(picks) < 160
    # a different seed picks a different subset
    other = [rule.selects(seed=8, fingerprint=fp) for fp in fps]
    assert other != picks


def test_rule_match_prefix_overrides_rate():
    rule = FaultRule(kind="hang", match="abcd")
    assert rule.selects(seed=0, fingerprint="abcd" + "0" * 60)
    assert not rule.selects(seed=0, fingerprint="dcba" + "0" * 60)


def test_rule_times_bounds_attempts():
    plan = FaultPlan(seed=0, rules=(FaultRule(kind="crash", rate=1.0),))
    fp = "0" * 64
    assert plan.first_fault(fp, 1, ("crash",)) is not None
    assert plan.first_fault(fp, 2, ("crash",)) is None  # times=1 default
    twice = FaultPlan(
        seed=0, rules=(FaultRule(kind="crash", rate=1.0, times=2),)
    )
    assert twice.first_fault(fp, 2, ("crash",)) is not None
    assert twice.first_fault(fp, 3, ("crash",)) is None


def test_plan_round_trip(tmp_path):
    plan = FaultPlan(
        seed=3,
        rules=(
            FaultRule(kind="crash", rate=0.25),
            FaultRule(kind="corrupt-cache", match="ff"),
        ),
        hang_s=12.5,
    )
    path = tmp_path / "plan.json"
    plan.dump(path)
    assert FaultPlan.load(path) == plan
    assert FaultPlan.from_dict(plan.to_dict()) == plan


def test_plan_from_env(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
    assert plan_from_env() is None
    monkeypatch.setenv(
        "REPRO_FAULT_PLAN",
        '{"seed": 1, "rules": [{"kind": "crash", "rate": 1.0}]}',
    )
    plan = plan_from_env()
    assert plan is not None and plan.rules[0].kind == "crash"
    path = tmp_path / "plan.json"
    plan.dump(path)
    monkeypatch.setenv("REPRO_FAULT_PLAN", str(path))
    assert plan_from_env() == plan
    monkeypatch.setenv("REPRO_FAULT_PLAN", "{ not json")
    with pytest.raises(ValueError):
        plan_from_env()


def test_plan_rejects_unknown_kind():
    with pytest.raises(ValueError, match="kind"):
        FaultRule(kind="meteor-strike", rate=1.0)


# -------------------------------------------------------------- policy


def test_backoff_is_seeded_and_bounded():
    policy = FaultPolicy(
        max_retries=4, backoff_base_s=0.1, backoff_max_s=0.5, backoff_seed=9
    )
    fp = "a" * 64
    delays = policy.backoff_schedule(fp)
    assert delays == policy.backoff_schedule(fp)  # deterministic
    assert len(delays) == 4
    assert all(0 < d <= 0.5 for d in delays)
    # jittered exponential: strictly within [base * 2^(n-1) * 0.5, cap]
    assert delays[0] >= 0.05
    assert policy.backoff_schedule("b" * 64) != delays  # per-point jitter


def test_policy_validation():
    with pytest.raises(ValueError):
        FaultPolicy(max_retries=-1)
    with pytest.raises(ValueError):
        FaultPolicy(timeout_s=0.0)
    with pytest.raises(ValueError):
        FaultPolicy(on_failure="explode")
    assert FaultPolicy().is_default
    assert not FaultPolicy(max_retries=1).is_default


def test_failure_record_round_trip():
    rec = FailureRecord(
        kind="timeout",
        exc_type="",
        message="exceeded 0.5s",
        traceback_tail="",
        attempts=2,
        elapsed_s=1.0,
        fingerprint="c" * 64,
    )
    assert FailureRecord.from_dict(rec.to_dict()) == rec
    assert "timeout" in rec.describe()


# ----------------------------------------------------- runner behavior


def test_crash_skip_yields_failure_records(baseline):
    plan = FaultPlan(seed=1, rules=(FaultRule(kind="crash", rate=1.0),))
    runner = SweepRunner(
        jobs=1,
        policy=FaultPolicy(on_failure="skip"),
        fault_plan=plan,
    )
    results = runner.run(tiny_grid())
    assert all(not r.ok for r in results)
    assert all(r.failure.kind == "crash" for r in results)
    assert all(r.stats is None for r in results)
    assert runner.failed == len(results)
    summary = failure_summary(results)
    assert summary["failed"] == len(results) and summary["ok"] == 0


def test_crash_raise_aborts_with_context():
    plan = FaultPlan(seed=1, rules=(FaultRule(kind="crash", rate=1.0),))
    runner = SweepRunner(jobs=1, fault_plan=plan)
    with pytest.raises(SweepExecutionError) as exc_info:
        runner.run(tiny_grid()[:1])
    assert exc_info.value.record.kind == "crash"
    assert exc_info.value.spec.protocol == "directory"


def test_retry_recovers_bit_identically(baseline):
    # every point crashes on attempt 1 (times=1), retry succeeds
    plan = FaultPlan(seed=1, rules=(FaultRule(kind="crash", rate=1.0),))
    runner = SweepRunner(
        jobs=1,
        policy=FaultPolicy(
            max_retries=1, backoff_base_s=0.01, backoff_max_s=0.02
        ),
        fault_plan=plan,
    )
    results = runner.run(tiny_grid())
    assert all(r.ok for r in results)
    assert all(r.attempts == 2 for r in results)
    for r in results:
        assert stats_to_dict(r.stats) == baseline[r.spec.fingerprint()]


def test_retries_exhaust_with_attempt_count():
    plan = FaultPlan(
        seed=1, rules=(FaultRule(kind="crash", rate=1.0, times=99),)
    )
    runner = SweepRunner(
        jobs=1,
        policy=FaultPolicy(
            max_retries=2,
            backoff_base_s=0.01,
            backoff_max_s=0.02,
            on_failure="skip",
        ),
        fault_plan=plan,
    )
    results = runner.run(tiny_grid()[:1])
    assert not results[0].ok
    assert results[0].failure.attempts == 3  # 1 try + 2 retries
    assert results[0].attempts == 3


def test_backoff_does_not_block_a_scheduler_slot(baseline):
    """A spec waiting out its retry backoff must not occupy a worker.

    Grid of two specs through ONE slot: the first crashes on attempt 1
    and backs off for ~0.5-1 s, the second runs clean in ~0.1 s.  With
    a free slot during the backoff the clean spec finishes first; a
    blocking backoff would serialize the retry ahead of it.
    """
    grid = tiny_grid(("directory", "dico"))
    crashy, clean = grid
    plan = FaultPlan(
        seed=0,
        rules=(
            FaultRule(
                kind="crash", match=crashy.fingerprint()[:16], times=1
            ),
        ),
    )
    completed = []
    runner = SweepRunner(
        jobs=1,
        policy=FaultPolicy(
            max_retries=1,
            backoff_base_s=1.0,
            backoff_max_s=1.5,
            on_failure="skip",
        ),
        fault_plan=plan,
        progress=completed.append,
    )
    results = runner.run(grid)
    assert all(r.ok for r in results)
    assert results[0].attempts == 2 and results[1].attempts == 1
    for r in results:
        assert stats_to_dict(r.stats) == baseline[r.spec.fingerprint()]
    # completion order: the clean spec landed while the crashed one
    # was still backing off
    assert clean.label in completed[0]
    assert crashy.label in completed[1]


def test_timeout_kills_hung_worker():
    plan = FaultPlan(
        seed=1, rules=(FaultRule(kind="hang", rate=1.0),), hang_s=60.0
    )
    runner = SweepRunner(
        jobs=1,
        policy=FaultPolicy(timeout_s=0.5, on_failure="skip"),
        fault_plan=plan,
    )
    results = runner.run(tiny_grid()[:1])
    assert not results[0].ok
    assert results[0].failure.kind == "timeout"
    # the worker was killed near the deadline, not after hang_s
    assert results[0].elapsed_s < 30.0


def test_corrupt_result_is_an_attempt_failure():
    plan = FaultPlan(
        seed=1, rules=(FaultRule(kind="corrupt-result", rate=1.0),)
    )
    runner = SweepRunner(
        jobs=1, policy=FaultPolicy(on_failure="skip"), fault_plan=plan
    )
    results = runner.run(tiny_grid()[:1])
    assert not results[0].ok
    assert results[0].failure.kind == "exception"


def test_isolated_fault_free_matches_serial(baseline):
    # a non-default policy forces the isolated-process executor; with
    # no faults injected its stats must stay bit-identical
    runner = SweepRunner(jobs=2, policy=FaultPolicy(timeout_s=120.0))
    results = runner.run(tiny_grid())
    assert all(r.ok and r.attempts == 1 for r in results)
    for r in results:
        assert stats_to_dict(r.stats) == baseline[r.spec.fingerprint()]


@settings(max_examples=5, deadline=None)
@given(
    plan_seed=st.integers(min_value=0, max_value=2**16),
    crash_rate=st.floats(min_value=0.0, max_value=1.0),
    corrupt_rate=st.floats(min_value=0.0, max_value=1.0),
)
def test_property_faults_never_perturb_stats(
    baseline, plan_seed, crash_rate, corrupt_rate
):
    """Any plan → every entry bit-identical to fault-free OR failed."""
    plan = FaultPlan(
        seed=plan_seed,
        rules=(
            FaultRule(kind="crash", rate=crash_rate),
            FaultRule(kind="corrupt-result", rate=corrupt_rate),
        ),
    )
    runner = SweepRunner(
        jobs=1, policy=FaultPolicy(on_failure="skip"), fault_plan=plan
    )
    results = runner.run(tiny_grid())
    for r in results:
        if r.ok:
            assert stats_to_dict(r.stats) == baseline[r.spec.fingerprint()]
        else:
            assert isinstance(r.failure, FailureRecord)
            assert r.failure.kind in ("crash", "exception")


# -------------------------------------------------------------- resume


def test_resume_re_executes_exactly_the_failed_set(tmp_path, baseline):
    grid = tiny_grid()
    fps = [s.fingerprint() for s in grid]
    # fail exactly the middle point, by fingerprint prefix
    plan = FaultPlan(
        seed=0, rules=(FaultRule(kind="crash", match=fps[1][:16]),)
    )
    chaos = SweepRunner(
        jobs=1,
        cache_dir=str(tmp_path),
        policy=FaultPolicy(on_failure="skip"),
        fault_plan=plan,
    )
    first = chaos.run(grid)
    assert [r.ok for r in first] == [True, False, True]

    journal = SweepJournal.for_grid(tmp_path, grid)
    standing = journal.summarize(grid)
    assert standing["failed"] == [fps[1]]
    assert set(standing["ok"]) == {fps[0], fps[2]}

    # resume without the plan: cache serves the ok points, only the
    # failed one re-executes
    resume = SweepRunner(jobs=1, cache_dir=str(tmp_path))
    second = resume.run(grid)
    assert resume.executed == 1
    assert resume.cache_hits == 2
    assert all(r.ok for r in second)
    for r in second:
        assert stats_to_dict(r.stats) == baseline[r.spec.fingerprint()]
    assert journal.summarize(grid)["failed"] == []


def test_corrupt_cache_entry_quarantined_on_next_read(tmp_path, baseline):
    grid = tiny_grid()[:1]
    plan = FaultPlan(
        seed=0, rules=(FaultRule(kind="corrupt-cache", rate=1.0),)
    )
    chaos = SweepRunner(jobs=1, cache_dir=str(tmp_path), fault_plan=plan)
    first = chaos.run(grid)
    assert first[0].ok  # the run itself succeeded; only the cache lied
    entry = chaos.cache.path_for(grid[0])
    with pytest.raises(json.JSONDecodeError):
        json.loads(entry.read_text())

    clean = SweepRunner(jobs=1, cache_dir=str(tmp_path))
    second = clean.run(grid)
    assert clean.executed == 1 and clean.cache_hits == 0
    assert stats_to_dict(second[0].stats) == baseline[grid[0].fingerprint()]
    assert entry.with_name(entry.name + ".corrupt").exists()


def test_fault_plan_env_reaches_pool_workers(tmp_path, monkeypatch):
    monkeypatch.setenv(
        "REPRO_FAULT_PLAN",
        '{"seed": 5, "rules": [{"kind": "crash", "rate": 1.0}]}',
    )
    runner = SweepRunner(jobs=1, policy=FaultPolicy(on_failure="skip"))
    assert runner.fault_plan is not None
    results = runner.run(tiny_grid()[:1])
    assert not results[0].ok and results[0].failure.kind == "crash"
    assert os.environ.get("REPRO_FAULT_PLAN")  # untouched
