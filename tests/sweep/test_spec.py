"""Unit tests for RunSpec serialization, keys and config overrides."""

import json

import pytest

from repro.sim.config import DEFAULT_CHIP, small_test_chip
from repro.sweep.spec import (
    RunSpec,
    apply_overrides,
    config_from_dict,
    config_to_dict,
    placement_spec,
    snapshot_workload,
)
from repro.workloads.placement import VMPlacement


def tiny_spec(**kwargs) -> RunSpec:
    defaults = dict(
        protocol="dico",
        workload="radix",
        seed=2,
        cycles=2_000,
        warmup=500,
        config=config_to_dict(small_test_chip()),
    )
    defaults.update(kwargs)
    return RunSpec(**defaults)


def test_config_round_trip():
    for cfg in (DEFAULT_CHIP, small_test_chip()):
        assert config_from_dict(config_to_dict(cfg)) == cfg
    # survives JSON text too
    doc = json.loads(json.dumps(config_to_dict(DEFAULT_CHIP)))
    assert config_from_dict(doc) == DEFAULT_CHIP


def test_apply_overrides_flat_and_nested():
    cfg = apply_overrides(
        DEFAULT_CHIP,
        (("l1c_entries", 256), ("noc.model_contention", True)),
    )
    assert cfg.l1c_entries == 256
    assert cfg.noc.model_contention is True
    # base untouched (frozen dataclasses)
    assert DEFAULT_CHIP.l1c_entries == 2048
    assert DEFAULT_CHIP.noc.model_contention is False


def test_spec_round_trip_through_json():
    spec = tiny_spec(
        overrides=(("l1c_entries", 64),),
        protocol_kwargs={"provider_on_read": False},
        workload_specs=snapshot_workload("radix", 4),
    )
    doc = json.loads(json.dumps(spec.to_dict()))
    assert RunSpec.from_dict(doc) == spec


def test_canonical_json_is_stable_and_content_sensitive():
    a, b = tiny_spec(), tiny_spec()
    assert a.canonical_json() == b.canonical_json()
    assert a.canonical_json() != tiny_spec(seed=3).canonical_json()
    assert (
        a.canonical_json()
        != tiny_spec(overrides=(("l1c_entries", 64),)).canonical_json()
    )


def test_canonical_json_resolves_workload_content():
    """A spec without embedded workload specs keys by resolved content,
    so registry edits change the key."""
    from repro.workloads import spec as spec_module

    plain = tiny_spec()
    before = plain.canonical_json()
    original = spec_module.BENCHMARKS["radix"]
    import dataclasses

    spec_module.BENCHMARKS["radix"] = dataclasses.replace(
        original, reuse_prob=0.123
    )
    try:
        assert plain.canonical_json() != before
    finally:
        spec_module.BENCHMARKS["radix"] = original
    assert plain.canonical_json() == before


def test_placement_spec_round_trip():
    placement = VMPlacement.alternative(4, 4, 2)
    doc = placement_spec(placement)
    rebuilt = VMPlacement(
        {int(vm): tuple(tiles) for vm, tiles in doc.items()}
    )
    assert rebuilt.tiles_used == placement.tiles_used
    for vm in range(2):
        assert rebuilt.tiles_of(vm) == placement.tiles_of(vm)


def test_build_chip_rejects_unknown_placement_name():
    with pytest.raises(ValueError):
        tiny_spec(placement="diagonal").build_chip()


def test_execute_is_deterministic():
    spec = tiny_spec()
    assert spec.execute().summary() == spec.execute().summary()


def test_specs_are_hashable():
    a = tiny_spec(protocol_kwargs={"provider_on_read": True})
    b = tiny_spec(protocol_kwargs={"provider_on_read": True})
    assert hash(a) == hash(b)
    assert len({a, b}) == 1


def test_alias_canonicalizes_to_a_stable_fingerprint():
    # the registry resolves aliases in __post_init__, so the sweep
    # result cache never depends on which spelling the caller typed
    a = tiny_spec(protocol="providers")
    b = tiny_spec(protocol="dico-providers")
    assert a.protocol == "dico-providers"
    assert a.fingerprint() == b.fingerprint()
    assert tiny_spec(protocol="mesi").protocol == "mesi-snoop"


def test_unknown_protocol_rejected_via_registry():
    from repro.sim.config import ConfigError

    with pytest.raises(ConfigError, match="unknown protocol"):
        tiny_spec(protocol="mosi")


def test_unknown_override_key_rejected():
    from repro.sweep.spec import valid_override_keys

    with pytest.raises(ValueError, match="l1c_entries"):
        apply_overrides(DEFAULT_CHIP, (("l1c_entres", 256),))
    with pytest.raises(ValueError, match="noc.model_contention"):
        apply_overrides(DEFAULT_CHIP, (("noc.contention", True),))
    # the error names every valid dotted path
    keys = valid_override_keys()
    assert "l1.size_bytes" in keys
    assert "memory.latency_cycles" in keys
    assert "mesh_width" in keys
    assert keys == tuple(sorted(keys))
    # every advertised key really is replaceable
    cfg = apply_overrides(
        DEFAULT_CHIP,
        tuple((k, getattr_path(DEFAULT_CHIP, k)) for k in keys),
    )
    assert cfg == DEFAULT_CHIP


def getattr_path(obj, dotted):
    for part in dotted.split("."):
        obj = getattr(obj, part)
    return obj


# ---------------------------------------------------------------------------
# consolidation plans on specs

#: a legal storyline for the 4x4 small test chip with 4 VMs: VM 3
#: vacates, then VM 0 migrates onto its area
PLAN_DOC = {
    "seed": 9,
    "events": [
        {"cycle": 400, "kind": "vm_depart", "vm": 3},
        {"cycle": 900, "kind": "vm_migrate", "vm": 0,
         "tiles": [10, 11, 14, 15]},
        {"cycle": 1_200, "kind": "dedup_break", "vm": 1, "pages": 2},
    ],
}


def test_plan_round_trips_and_hashes():
    spec = tiny_spec(plan=PLAN_DOC)
    doc = json.loads(json.dumps(spec.to_dict()))
    assert doc["plan"]["events"][0]["kind"] == "vm_depart"
    rebuilt = RunSpec.from_dict(doc)
    assert rebuilt == spec
    assert hash(rebuilt) == hash(spec)


def test_static_spec_emits_no_plan_key():
    # pre-plan documents and fingerprints must stay byte-identical:
    # the key only appears when a non-empty plan is armed
    assert "plan" not in tiny_spec().to_dict()
    assert "plan" not in tiny_spec(plan=None).to_dict()


def test_empty_plan_normalizes_to_static():
    empty = tiny_spec(plan={"seed": 5, "events": []})
    static = tiny_spec()
    assert empty.plan is None
    assert empty.fingerprint() == static.fingerprint()
    assert empty.canonical_json() == static.canonical_json()


def test_plan_changes_the_fingerprint():
    assert tiny_spec(plan=PLAN_DOC).fingerprint() != tiny_spec().fingerprint()


def test_plan_events_canonically_cycle_sorted():
    shuffled = dict(PLAN_DOC, events=list(reversed(PLAN_DOC["events"])))
    spec = tiny_spec(plan=shuffled)
    cycles = [ev["cycle"] for ev in spec.to_dict()["plan"]["events"]]
    assert cycles == sorted(cycles)
    assert spec.fingerprint() == tiny_spec(plan=PLAN_DOC).fingerprint()


def test_plan_label_mentions_event_count():
    assert "plan[3]" in tiny_spec(plan=PLAN_DOC).label


def test_plan_validated_at_construction_names_event():
    from repro.sim.config import ConfigError

    late = {"seed": 0, "events": [
        {"cycle": 99_999, "kind": "dedup_break", "vm": 0, "pages": 1},
    ]}
    with pytest.raises(ConfigError, match=r"event 0 \(dedup_break, vm 0\)"):
        tiny_spec(plan=late)
    overlap = {"seed": 0, "events": [
        {"cycle": 100, "kind": "vm_migrate", "vm": 0,
         "tiles": [2, 3, 6, 7]},
    ]}
    with pytest.raises(ConfigError, match=r"overlaps tiles of VM\(s\) \[1\]"):
        tiny_spec(plan=overlap)


def test_plan_validates_against_custom_placement():
    from repro.sim.config import ConfigError

    placement = {"0": [0, 3, 5], "1": [9, 10, 12]}
    ok = tiny_spec(placement=placement, n_vms=2, plan={"seed": 0, "events": [
        {"cycle": 100, "kind": "vm_migrate", "vm": 0, "tiles": [1, 2, 4]},
    ]})
    assert ok.plan is not None
    with pytest.raises(ConfigError, match="overlaps"):
        tiny_spec(placement=placement, n_vms=2, plan={"seed": 0, "events": [
            {"cycle": 100, "kind": "vm_migrate", "vm": 0,
             "tiles": [9, 2, 4]},
        ]})


def test_build_chip_arms_the_plan():
    chip = tiny_spec(plan=PLAN_DOC).build_chip()
    assert chip.plan is not None
    assert len(chip.plan) == 3
    assert tiny_spec().build_chip().plan is None


def test_execute_with_plan_reports_consolidation():
    stats = tiny_spec(plan=PLAN_DOC).execute()
    assert stats.consolidation["vm_depart"] == 1
    assert stats.consolidation["vm_migrate"] == 1
    assert stats.consolidation["pages_broken"] == 2
