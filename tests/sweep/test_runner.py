"""Unit tests for the sweep runner (serial, pooled, cached paths)."""

import pytest

from repro.sim.config import small_test_chip
from repro.stats.io import stats_to_dict
from repro.sweep import RunSpec, SweepRunner, figure_grid, merge_by_point
from repro.sweep.spec import config_to_dict

TINY = config_to_dict(small_test_chip())


def tiny_grid(protocols=("directory", "dico")):
    return [
        RunSpec(
            protocol=p,
            workload="radix",
            seed=1,
            cycles=1_500,
            warmup=500,
            config=TINY,
        )
        for p in protocols
    ]


def test_serial_runner_executes_all(tmp_path):
    runner = SweepRunner(jobs=1, cache_dir=str(tmp_path))
    results = runner.run(tiny_grid())
    assert [r.spec.protocol for r in results] == ["directory", "dico"]
    assert runner.executed == 2
    assert all(not r.cached and r.elapsed_s > 0 for r in results)
    assert all(r.stats.operations > 0 for r in results)


def test_warm_cache_executes_nothing(tmp_path):
    cold = SweepRunner(jobs=1, cache_dir=str(tmp_path))
    first = cold.run(tiny_grid())
    warm = SweepRunner(jobs=1, cache_dir=str(tmp_path))
    second = warm.run(tiny_grid())
    assert warm.executed == 0
    assert warm.cache_hits == len(first)
    assert all(r.cached for r in second)
    for a, b in zip(first, second):
        assert stats_to_dict(a.stats) == stats_to_dict(b.stats)


def test_pool_matches_serial_bit_for_bit():
    grid = tiny_grid(("directory", "dico", "dico-providers"))
    serial = SweepRunner(jobs=1).run(grid)
    pooled = SweepRunner(jobs=2).run(grid)
    for a, b in zip(serial, pooled):
        assert stats_to_dict(a.stats) == stats_to_dict(b.stats)
        assert a.stats.summary() == b.stats.summary()


def test_no_cache_dir_always_simulates(tmp_path):
    runner = SweepRunner(jobs=1, cache_dir=None)
    runner.run(tiny_grid())
    runner.run(tiny_grid())
    assert runner.executed == 4
    assert runner.cache_hits == 0


def test_use_cache_false_disables_cache(tmp_path):
    runner = SweepRunner(jobs=1, cache_dir=str(tmp_path), use_cache=False)
    runner.run(tiny_grid())
    assert runner.cache is None


def test_progress_callback_sees_every_spec(tmp_path):
    lines = []
    runner = SweepRunner(
        jobs=1, cache_dir=str(tmp_path), progress=lines.append
    )
    runner.run(tiny_grid())
    assert len(lines) == 2
    assert "[1/2]" in lines[0] and "[2/2]" in lines[1]
    # warm pass reports cache hits
    lines.clear()
    SweepRunner(
        jobs=1, cache_dir=str(tmp_path), progress=lines.append
    ).run(tiny_grid())
    assert all("cache" in line for line in lines)


def test_jobs_must_be_positive():
    with pytest.raises(ValueError):
        SweepRunner(jobs=0)


def test_jobs_clamped_to_cpu_count(caplog):
    import os

    cpus = os.cpu_count() or 1
    with caplog.at_level("INFO", logger="repro.sweep"):
        runner = SweepRunner(jobs=cpus + 100)
    assert runner.jobs == cpus
    assert any("clamping jobs" in rec.message for rec in caplog.records)
    # at-or-below the core count passes through untouched
    assert SweepRunner(jobs=1).jobs == 1


def test_empty_grid_is_a_no_op(tmp_path):
    lines = []
    runner = SweepRunner(
        jobs=1, cache_dir=str(tmp_path), progress=lines.append
    )
    assert runner.run([]) == []
    assert runner.executed == 0 and runner.failed == 0
    assert lines == []


def test_keyboard_interrupt_carries_partial_results(tmp_path, monkeypatch):
    from repro.sweep import SweepInterrupted, SweepJournal
    from repro.sweep import runner as runner_mod

    grid = tiny_grid(("directory", "dico", "dico-providers"))
    real_execute = runner_mod._execute_payload
    calls = {"n": 0}

    def interrupt_second(payload):
        calls["n"] += 1
        if calls["n"] == 2:
            raise KeyboardInterrupt
        return real_execute(payload)

    monkeypatch.setattr(runner_mod, "_execute_payload", interrupt_second)
    runner = SweepRunner(jobs=1, cache_dir=str(tmp_path))
    with pytest.raises(SweepInterrupted) as exc_info:
        runner.run(grid)
    partial = exc_info.value.results
    assert len(partial) == 1
    assert partial[0].spec.protocol == "directory" and partial[0].ok
    # the journal already has the completed point, so --resume works
    journal = SweepJournal.for_grid(tmp_path, grid)
    standing = journal.summarize(grid)
    assert len(standing["ok"]) == 1 and len(standing["missing"]) == 2


def test_pooled_path_leaves_no_live_children():
    import multiprocessing

    grid = tiny_grid(("directory", "dico", "dico-providers"))
    SweepRunner(jobs=2).run(grid)
    for child in multiprocessing.active_children():
        child.join(timeout=10)
    assert multiprocessing.active_children() == []


def test_figure_grid_shape_and_order():
    grid = figure_grid(
        protocols=("directory", "dico"),
        workloads=("radix", "apache"),
        seeds=(1, 2),
    )
    assert len(grid) == 8
    # workload-major, then protocol, then seed
    assert [s.workload for s in grid[:4]] == ["radix"] * 4
    assert [(s.protocol, s.seed) for s in grid[:4]] == [
        ("directory", 1),
        ("directory", 2),
        ("dico", 1),
        ("dico", 2),
    ]
    # per-workload windows applied
    apache = grid[4]
    assert (apache.warmup, apache.cycles) == (100_000, 100_000)


def test_merge_by_point_collapses_seeds():
    specs = [
        RunSpec(
            protocol="dico",
            workload="radix",
            seed=s,
            cycles=1_500,
            warmup=500,
            config=TINY,
        )
        for s in (1, 2)
    ]
    results = SweepRunner(jobs=1).run(specs)
    merged = merge_by_point((r.spec, r.stats) for r in results)
    assert set(merged) == {("dico", "radix")}
    agg = merged[("dico", "radix")]
    assert agg.operations == sum(r.stats.operations for r in results)
    assert agg.cycles == sum(r.stats.cycles for r in results)
    assert agg.miss_latency.count == sum(
        r.stats.miss_latency.count for r in results
    )
    # seeds actually differed (otherwise the merge test is vacuous)
    assert results[0].stats.operations != results[1].stats.operations
    # inputs untouched by the merge
    assert results[0].stats.miss_latency.count < agg.miss_latency.count
