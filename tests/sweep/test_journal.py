"""Unit tests for the sweep checkpoint journal."""

import json

import pytest

from repro.sim.config import small_test_chip
from repro.sweep import RunSpec, SweepJournal, grid_fingerprint
from repro.sweep.spec import config_to_dict

TINY = config_to_dict(small_test_chip())


def specs(n=3):
    return [
        RunSpec(
            protocol="dico",
            workload="radix",
            seed=s,
            cycles=1_000,
            warmup=100,
            config=TINY,
        )
        for s in range(1, n + 1)
    ]


def test_grid_fingerprint_is_order_independent():
    grid = specs()
    assert grid_fingerprint(grid) == grid_fingerprint(list(reversed(grid)))
    assert grid_fingerprint(grid) != grid_fingerprint(grid[:2])


def test_record_and_load_last_wins(tmp_path):
    journal = SweepJournal(tmp_path / "j.jsonl")
    journal.record("a" * 64, "failed", attempts=1, detail="boom")
    journal.record("b" * 64, "ok", attempts=1, elapsed_s=0.5)
    journal.record("a" * 64, "ok", attempts=2)  # retry recovered
    records = journal.load()
    assert records["a" * 64]["status"] == "ok"
    assert records["a" * 64]["attempts"] == 2
    assert records["b" * 64]["elapsed_s"] == 0.5
    # three physical lines: append-only, superseded not rewritten
    assert len(journal.path.read_text().splitlines()) == 3


def test_invalid_status_rejected(tmp_path):
    journal = SweepJournal(tmp_path / "j.jsonl")
    with pytest.raises(ValueError, match="status"):
        journal.record("a" * 64, "meh")


def test_torn_final_line_is_ignored(tmp_path):
    journal = SweepJournal(tmp_path / "j.jsonl")
    journal.record("a" * 64, "ok")
    with open(journal.path, "a") as fh:
        fh.write('{"fingerprint": "bbbb", "stat')  # torn write
    records = journal.load()
    assert list(records) == ["a" * 64]


def test_summarize_partitions_the_grid(tmp_path):
    grid = specs()
    journal = SweepJournal.for_grid(tmp_path, grid)
    fps = [s.fingerprint() for s in grid]
    journal.record(fps[0], "ok")
    journal.record(fps[2], "failed", detail="crash")
    standing = journal.summarize(grid)
    assert standing["ok"] == [fps[0]]
    assert standing["failed"] == [fps[2]]
    assert standing["missing"] == [fps[1]]


def test_for_grid_path_is_stable_per_grid(tmp_path):
    grid = specs()
    a = SweepJournal.for_grid(tmp_path, grid)
    b = SweepJournal.for_grid(tmp_path, list(reversed(grid)))
    assert a.path == b.path
    other = SweepJournal.for_grid(tmp_path, grid[:2])
    assert other.path != a.path
    assert a.path.parent == tmp_path / "journals"


def test_touch_creates_empty_journal(tmp_path):
    journal = SweepJournal(tmp_path / "journals" / "j.jsonl")
    assert not journal.exists()
    journal.touch()
    assert journal.exists()
    assert journal.load() == {}
    # touching again never truncates
    journal.record("a" * 64, "ok")
    journal.touch()
    assert len(journal.load()) == 1


def test_records_are_single_json_lines(tmp_path):
    journal = SweepJournal(tmp_path / "j.jsonl")
    journal.record("a" * 64, "ok", attempts=1, elapsed_s=1.25, detail="")
    line = journal.path.read_text()
    assert line.endswith("\n") and line.count("\n") == 1
    doc = json.loads(line)
    assert doc == {
        "fingerprint": "a" * 64,
        "status": "ok",
        "attempts": 1,
        "elapsed_s": 1.25,
        "detail": "",
    }


# -------------------------------------------------------- completion + GC


def test_mark_complete_and_is_complete(tmp_path):
    journal = SweepJournal(tmp_path / "j.jsonl")
    journal.record("a" * 64, "ok")
    assert not journal.is_complete()
    journal.mark_complete(points=1)
    assert journal.is_complete()
    # the marker is invisible to load()/summarize() readers
    assert list(journal.load()) == ["a" * 64]


def test_gc_prunes_only_old_completed_journals(tmp_path):
    import os

    from repro.sweep import gc_journals

    root = tmp_path / "journals"
    done_old = SweepJournal(root / "done-old.jsonl")
    done_old.record("a" * 64, "ok")
    done_old.mark_complete(1)
    done_new = SweepJournal(root / "done-new.jsonl")
    done_new.record("b" * 64, "ok")
    done_new.mark_complete(1)
    inflight_old = SweepJournal(root / "inflight-old.jsonl")
    inflight_old.record("c" * 64, "failed", detail="boom")

    old = 1_000_000.0
    os.utime(done_old.path, (old, old))
    os.utime(inflight_old.path, (old, old))

    pruned = gc_journals(tmp_path, keep_s=7 * 86400.0)
    assert [p.name for p in pruned] == ["done-old.jsonl"]
    assert not done_old.path.exists()
    # recent completed journals stay within the keep window
    assert done_new.path.exists()
    # incomplete journals are resume state: never pruned, however old
    assert inflight_old.path.exists()


def test_gc_injectable_now_and_missing_dir(tmp_path):
    from repro.sweep import gc_journals

    assert gc_journals(tmp_path / "nowhere") == []
    journal = SweepJournal(tmp_path / "journals" / "j.jsonl")
    journal.record("a" * 64, "ok")
    journal.mark_complete(1)
    mtime = journal.path.stat().st_mtime
    assert gc_journals(tmp_path, keep_s=60.0, now=mtime + 30.0) == []
    pruned = gc_journals(tmp_path, keep_s=60.0, now=mtime + 61.0)
    assert [p.name for p in pruned] == ["j.jsonl"]


def test_runner_marks_fully_ok_grid_complete(tmp_path):
    from repro.sweep import SweepRunner

    grid = specs(2)
    grid = [
        RunSpec(
            protocol=s.protocol, workload=s.workload, seed=s.seed,
            cycles=1_500, warmup=500, config=TINY,
        )
        for s in grid
    ]
    SweepRunner(jobs=1, cache_dir=tmp_path, progress=False).run(grid)
    journal = SweepJournal.for_grid(tmp_path, grid)
    assert journal.is_complete()
