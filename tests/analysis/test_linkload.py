"""Unit tests for the link-load hotspot analysis."""

from dataclasses import replace

import pytest

from repro.analysis.linkload import (
    area_crossing_flits,
    heatmap,
    hotspots,
    tile_load,
)
from repro.noc.network import Network
from repro.noc.topology import Mesh
from repro.sim.config import NocConfig


@pytest.fixture
def loaded():
    mesh = Mesh(4, 4)
    net = Network(mesh, track_link_load=True)
    net.send(0, 3, flits=5)   # along the top row
    net.send(0, 3, flits=5)
    net.send(12, 15, flits=1)  # along the bottom row
    return mesh, net


def test_tile_load_counts_forwarded_flits(loaded):
    mesh, net = loaded
    load = tile_load(net.stats, mesh)
    assert load[0] == 10  # two 5-flit sends leave tile 0
    assert load[1] == 10
    assert load[3] == 0   # destination forwards nothing
    assert load[12] == 1


def test_hotspots_ranked(loaded):
    mesh, net = loaded
    top = hotspots(net.stats, mesh, top=2)
    assert top[0][1] == 10
    assert top[0][0] in {(0, 1), (1, 2), (2, 3)}


def test_area_crossing_split():
    mesh = Mesh(4, 4)
    net = Network(mesh, track_link_load=True)
    # areas: 2x2 quadrants
    from repro.core.area import AreaMap

    areas = AreaMap(4, 4, 4)
    area_of = {t: areas.area_of(t) for t in range(16)}
    net.send(0, 1, flits=2)    # intra-area (both in quadrant 0)
    net.send(0, 3, flits=1)    # crosses into quadrant 1
    split = area_crossing_flits(net.stats, mesh, area_of)
    assert split["intra_area"] >= 2
    assert split["inter_area"] >= 1
    total_flits = sum(net.stats.link_load.values())
    assert split["intra_area"] + split["inter_area"] == total_flits


def test_heatmap_renders_grid(loaded):
    mesh, net = loaded
    art = heatmap(net.stats, mesh)
    lines = art.splitlines()
    assert len(lines) == mesh.height + 1  # rows + caption
    assert all(len(l) == mesh.width * 2 for l in lines[:-1])
    assert "peak" in lines[-1]


def test_chip_level_tracking_flag():
    """track_link_load threads from NocConfig into the protocol."""
    from repro.sim.chip import Chip
    from repro.sim.config import small_test_chip

    cfg = small_test_chip()
    cfg = replace(cfg, noc=replace(cfg.noc, track_link_load=True))
    chip = Chip("dico", "radix", config=cfg, seed=0)
    chip.run_cycles(3_000)
    assert chip.protocol.network.stats.link_load  # populated
