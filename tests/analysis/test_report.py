"""Unit tests for the figure-generation analysis functions."""

import pytest

from repro.analysis.report import (
    average_miss_links,
    energy_breakdowns,
    fig7_rows,
    fig8a_rows,
    fig8b_rows,
    fig9a_performance,
    fig9b_miss_breakdown,
)
from repro.stats.counters import RunStats


def fake_stats(protocol: str, ops: int, cycles: int, flits: int) -> RunStats:
    st = RunStats(protocol=protocol, workload="synth")
    st.operations = ops
    st.cycles = cycles
    st.structure("l1").tag_reads = ops
    st.structure("l1").data_reads = ops
    st.structure("l2").data_reads = ops // 4
    st.network.flit_link_traversals = flits
    st.network.routing_events = flits // 5
    st.miss_categories["pred_owner_hit"] = 30
    st.miss_categories["unpredicted_home"] = 70
    st.miss_links.add(10)
    st.miss_links.add(12)
    return st


@pytest.fixture
def stats():
    return {
        "directory": fake_stats("directory", 1000, 5000, 10000),
        "dico": fake_stats("dico", 1100, 5000, 8000),
    }


def test_fig9a_transactions_metric(stats):
    perf = fig9a_performance(stats, metric="transactions")
    assert perf["directory"] == 1.0
    assert perf["dico"] == pytest.approx(1.1)


def test_fig9a_time_metric():
    stats = {
        "directory": fake_stats("directory", 100, 2000, 0),
        "dico": fake_stats("dico", 100, 1000, 0),
    }
    perf = fig9a_performance(stats, metric="time")
    assert perf["dico"] == pytest.approx(2.0)  # half the time = 2x perf


def test_fig9a_unknown_metric(stats):
    with pytest.raises(ValueError):
        fig9a_performance(stats, metric="flops")


def test_fig7_normalized_to_directory_cache(stats):
    rows = fig7_rows(stats)
    assert rows["directory"]["cache"] == pytest.approx(1.0)
    assert rows["directory"]["total"] > 1.0
    # dico moved fewer flits: lower link energy
    assert rows["dico"]["links"] < rows["directory"]["links"]


def test_fig8a_components_sum_to_cache_energy(stats):
    rows = fig8a_rows(stats)
    energies = energy_breakdowns(stats)
    ref = energies["directory"].cache_energy
    for proto, comps in rows.items():
        assert sum(comps.values()) == pytest.approx(
            energies[proto].cache_energy / ref
        )


def test_fig8b_links_plus_routing_is_total(stats):
    rows = fig8b_rows(stats)
    for comps in rows.values():
        assert comps["links"] + comps["routing"] == pytest.approx(comps["total"])


def test_fig9b_shares_sum_to_one(stats):
    rows = fig9b_miss_breakdown(stats)
    for shares in rows.values():
        assert sum(shares.values()) == pytest.approx(1.0)
    assert rows["directory"]["pred_owner_hit"] == pytest.approx(0.3)


def test_average_miss_links(stats):
    links = average_miss_links(stats)
    assert links["directory"] == pytest.approx(11.0)
