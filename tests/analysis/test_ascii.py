"""Unit tests for the terminal figure rendering."""

from repro.analysis.ascii import grouped_bars, hbar, stacked_bars


def test_hbar_scaling():
    assert hbar(1.0, 1.0, width=10) == "█" * 10
    assert hbar(0.5, 1.0, width=10) == "█" * 5
    assert hbar(0.0, 1.0, width=10) == ""
    assert hbar(2.0, 1.0, width=10) == "█" * 10  # clamped


def test_hbar_fractional_cells():
    bar = hbar(0.55, 1.0, width=10)
    assert len(bar) == 6  # 5 full + 1 partial block
    assert bar[-1] in " ▏▎▍▌▋▊▉█"


def test_hbar_zero_scale():
    assert hbar(1.0, 0.0) == ""


def test_grouped_bars_contains_labels_and_values():
    out = grouped_bars({"directory": 1.0, "dico": 0.5}, title="perf")
    assert "perf" in out
    assert "directory" in out
    assert "1.000" in out and "0.500" in out
    # longest bar belongs to the maximum
    lines = out.splitlines()
    assert lines[1].count("█") > lines[2].count("█")


def test_stacked_bars_renders_all_segments():
    rows = {
        "directory": {"cache": 1.0, "links": 0.5},
        "dico": {"cache": 0.8, "links": 0.3},
    }
    out = stacked_bars(rows, segments=("cache", "links"), title="Fig 7")
    assert "Fig 7" in out
    assert "█=cache" in out and "▓=links" in out
    assert "1.500" in out  # directory total


def test_stacked_bars_handles_missing_segments():
    out = stacked_bars({"a": {"x": 1.0}}, segments=("x", "y"))
    assert "a" in out
