"""Unit tests for the full-chip driver."""

import pytest

from repro.sim.chip import Chip, PROTOCOLS, make_protocol, paper_scaled_chip
from repro.sim.config import small_test_chip
from repro.workloads.generator import ConsolidatedWorkload
from repro.workloads.placement import VMPlacement


def test_protocols_registry_complete():
    assert set(PROTOCOLS) == {
        "directory",
        "dico",
        "dico-providers",
        "dico-arin",
        "vh",  # the Sec. II related-work comparator
        "mesi-snoop",  # the classic-SMP bus family
        "moesi-snoop",
        "dls",  # directoryless shared-LLC
    }


def test_make_protocol_by_name():
    cfg = small_test_chip()
    for name, cls in PROTOCOLS.items():
        proto = make_protocol(name, cfg)
        assert isinstance(proto, cls)
        assert proto.name == name


def test_make_protocol_unknown():
    with pytest.raises(ValueError, match="unknown protocol"):
        make_protocol("snoop", small_test_chip())


def test_chip_accepts_protocol_instance():
    cfg = small_test_chip()
    proto = make_protocol("dico", cfg)
    chip = Chip(proto, "radix", seed=0)
    assert chip.protocol is proto
    stats = chip.run_cycles(2_000)
    assert stats.protocol == "dico"


def test_chip_accepts_workload_instance():
    cfg = small_test_chip()
    proto = make_protocol("directory", cfg)
    placement = VMPlacement.area_aligned(proto.areas, 4)
    wl = ConsolidatedWorkload("lu", placement, proto.addr, seed=0)
    chip = Chip(proto, wl)
    stats = chip.run_cycles(2_000)
    assert stats.workload == "lu"


def test_cores_only_on_placed_tiles():
    cfg = small_test_chip()
    proto = make_protocol("dico", cfg)
    placement = VMPlacement({0: proto.areas.tiles_of(0)})  # one VM only
    chip = Chip(proto, "radix", placement=placement)
    assert len(chip.cores) == 4
    stats = chip.run_cycles(3_000)
    assert stats.operations == sum(c.ops_done for c in chip.cores)


def test_run_cycles_respects_deadline():
    chip = Chip("directory", "radix", config=small_test_chip(), seed=1)
    stats = chip.run_cycles(1_000)
    assert stats.cycles == 1_000
    assert chip.sim.now <= 1_000


def test_run_ops_completes_every_core():
    chip = Chip("dico-arin", "tomcatv", config=small_test_chip(), seed=1)
    chip.run_ops(20)
    assert all(c.done for c in chip.cores)
    assert all(c.ops_done == 20 for c in chip.cores)


def test_operations_monotone_in_window():
    short = Chip("dico", "apache", config=small_test_chip(), seed=1)
    long = Chip("dico", "apache", config=small_test_chip(), seed=1)
    s1 = short.run_cycles(2_000)
    s2 = long.run_cycles(6_000)
    assert s2.operations > s1.operations


def test_paper_scaled_chip_runs_all_protocols():
    cfg = paper_scaled_chip()
    for name in PROTOCOLS:
        chip = Chip(name, "radix", config=cfg, seed=0)
        stats = chip.run_cycles(2_000)
        assert stats.operations > 0


def test_per_vm_operations_fairness():
    chip = Chip("dico-providers", "radix", config=small_test_chip(), seed=3)
    chip.run_cycles(8_000)
    per_vm = chip.per_vm_operations()
    assert set(per_vm) == {0, 1, 2, 3}
    assert sum(per_vm.values()) == sum(c.ops_done for c in chip.cores)
    # homogeneous VMs progress within 2x of each other
    assert max(per_vm.values()) < 2 * max(1, min(per_vm.values()))


def test_core_finished_guard_never_underflows():
    chip = Chip("directory", "mixed-sci", config=small_test_chip(), seed=3)
    chip._cores_running = 1
    chip._core_finished(10)
    assert chip._cores_running == 0
    # a stray extra notification (e.g. a core finishing after the
    # window closed) must not drive the count negative
    chip._core_finished(11)
    assert chip._cores_running == 0
    assert chip._finish_time == 11


def test_run_cycles_initialises_running_count():
    chip = Chip("directory", "mixed-sci", config=small_test_chip(), seed=3)
    chip.cores[0].done = True  # e.g. pinned ops_target already met
    chip.run_cycles(200, warmup=100)
    # only the not-done cores were counted at the start of the window
    assert chip._cores_running <= len(chip.cores) - 1
    assert chip._cores_running >= 0
