"""Unit tests for the chip configuration (Table III geometry)."""

import pytest

from repro.sim.chip import paper_scaled_chip
from repro.sim.config import (
    CacheGeometry,
    ChipConfig,
    DEFAULT_CHIP,
    small_test_chip,
)


class TestCacheGeometry:
    def test_paper_l1_geometry(self):
        l1 = DEFAULT_CHIP.l1
        assert l1.size_bytes == 128 << 10
        assert l1.n_blocks == 2048
        assert l1.n_sets == 512
        assert l1.offset_bits == 6
        assert l1.index_bits == 9
        # Table V: L1Tag is 25 bits for 40-bit physical addresses
        assert l1.tag_bits(40) == 25
        assert l1.access_latency == 3  # 1 tag + 2 data

    def test_paper_l2_geometry(self):
        l2 = DEFAULT_CHIP.l2
        assert l2.n_blocks == 16384
        assert l2.n_sets == 2048
        assert l2.access_latency == 5  # 2 tag + 3 data

    def test_rejects_non_divisible_size(self):
        with pytest.raises(ValueError):
            CacheGeometry(size_bytes=1000, assoc=3)

    def test_rejects_non_pow2_sets(self):
        with pytest.raises(ValueError):
            CacheGeometry(size_bytes=3 * 64 * 2, assoc=2)


class TestChipConfig:
    def test_default_is_the_paper_platform(self):
        assert DEFAULT_CHIP.n_tiles == 64
        assert DEFAULT_CHIP.n_areas == 4
        assert DEFAULT_CHIP.tiles_per_area == 16
        assert DEFAULT_CHIP.phys_addr_bits == 40

    def test_pointer_widths_match_section_vb(self):
        # GenPo 6 bits (64 tiles), ProPo 4 bits (16-tile areas)
        assert DEFAULT_CHIP.genpo_bits == 6
        assert DEFAULT_CHIP.propo_bits == 4

    def test_propo_degenerates_for_single_tile_areas(self):
        cfg = DEFAULT_CHIP.with_areas(64)
        assert cfg.propo_bits == 0

    def test_areas_must_divide_tiles(self):
        with pytest.raises(ValueError):
            ChipConfig(mesh_width=8, mesh_height=8, n_areas=3)

    def test_with_mesh_and_with_areas(self):
        cfg = DEFAULT_CHIP.with_mesh(16, 8).with_areas(8)
        assert cfg.n_tiles == 128
        assert cfg.n_areas == 8
        assert cfg.tiles_per_area == 16

    def test_small_test_chip_is_valid_and_small(self):
        cfg = small_test_chip()
        assert cfg.n_tiles == 16
        assert cfg.l1.n_blocks == 16
        assert cfg.l2.n_blocks == 64

    def test_paper_scaled_chip_keeps_ratios(self):
        cfg = paper_scaled_chip()
        assert cfg.n_tiles == 64
        assert cfg.n_areas == 4
        # L2:L1 capacity ratio preserved relative sizes
        assert cfg.l2.size_bytes // cfg.l1.size_bytes == 4
        assert cfg.l1.assoc == DEFAULT_CHIP.l1.assoc
        assert cfg.l2.assoc == DEFAULT_CHIP.l2.assoc
