"""Chip-level dynamic consolidation: mid-run events across all eight
protocols, coherence audits under churned placements, per-event
statistics, and the empty-plan bit-identity contract."""

import pytest

from repro.sim.chip import PROTOCOLS, Chip
from repro.simx.engine import ArrayChip
from repro.stats.io import stats_to_dict
from repro.workloads.dynamics import ConsolidationEvent, ConsolidationPlan
from repro.workloads.placement import VMPlacement
from tests.conftest import tiny_chip

#: 4x4 chip, 2x2 areas: a0=(0,1,4,5) a1=(2,3,6,7) a2=(8,9,12,13)
#: a3=(10,11,14,15).  Three VMs leave area 3 free.
FREE_AREA = (10, 11, 14, 15)

#: families whose ``_migrate_block_state`` transfers lines instead of
#: flushing them (the protocols with location-independent metadata)
TRANSFER_FAMILIES = ("directory", "dico")


def storyline() -> ConsolidationPlan:
    """The five-kind storyline used throughout: migrate, dedup churn,
    depart, arrive — all within a 4000-cycle measurement window."""
    return ConsolidationPlan(seed=1, events=(
        ConsolidationEvent(800, "vm_migrate", 1, tiles=FREE_AREA),
        ConsolidationEvent(1_600, "dedup_break", 0, pages=4),
        ConsolidationEvent(2_400, "dedup_merge", 0, pages=4),
        ConsolidationEvent(3_200, "vm_depart", 2),
        ConsolidationEvent(3_600, "vm_arrive", 3, tiles=(8, 9, 12, 13)),
    ))


def dynamic_chip(protocol, plan=None, **kwargs):
    defaults = dict(config=tiny_chip(), n_vms=3, seed=2)
    defaults.update(kwargs)
    return Chip(protocol, "mixed-com", plan=plan, **defaults)


# ---------------------------------------------------------------------------
# the full storyline on every protocol, audited mid-run


@pytest.mark.parametrize("protocol", sorted(PROTOCOLS))
def test_storyline_keeps_every_protocol_coherent(protocol):
    """Events fire mid-run and the full invariant audit (copy-set
    checker + the protocol's own directory audit) passes at every
    window boundary — including the windows right after each event."""
    chip = dynamic_chip(protocol, plan=storyline())
    stats = chip.run_cycles_windowed(
        4_000, warmup=1_000, window=400,
        observe=lambda t: chip.verify_coherence(),
    )
    st = stats.consolidation
    assert st["vm_migrate"] == 1
    assert st["vm_depart"] == 1
    assert st["vm_arrive"] == 1
    assert st["pages_broken"] == 4
    assert st["pages_merged"] == 4
    assert stats.operations > 0


@pytest.mark.parametrize("protocol", sorted(PROTOCOLS))
def test_migration_handoff_matches_protocol_family(protocol):
    """Directory and DiCo transfer lines on migration; the area-keyed
    and bus/LLC families flush — the handoff mode is observable in the
    effect counters and is the degradation benchmark's contrast."""
    plan = ConsolidationPlan(seed=1, events=(
        ConsolidationEvent(2_000, "vm_migrate", 1, tiles=FREE_AREA),
    ))
    chip = dynamic_chip(protocol, plan=plan)
    stats = chip.run_cycles(4_000, warmup=1_000)
    st = stats.consolidation
    if protocol in TRANSFER_FAMILIES:
        # blocks busy mid-transaction at the fire cycle still flush;
        # the overwhelming majority must transfer
        assert st.get("blocks_migrated", 0) > st.get("blocks_flushed", 0)
    else:
        assert st.get("blocks_migrated", 0) == 0
        assert st.get("blocks_flushed", 0) > 0
    chip.verify_coherence()


@pytest.mark.parametrize("protocol", sorted(PROTOCOLS))
def test_audit_passes_under_non_contiguous_custom_placement(protocol):
    """A scattered (non-area-aligned, non-contiguous) placement plus a
    migration onto an equally scattered region keeps every protocol's
    directory audit clean."""
    placement = VMPlacement({0: (0, 3, 5, 6), 1: (9, 10, 12, 15)})
    plan = ConsolidationPlan(seed=1, events=(
        ConsolidationEvent(1_500, "vm_migrate", 0, tiles=(1, 2, 7, 13)),
    ))
    chip = Chip(
        protocol, "mixed-com", config=tiny_chip(), placement=placement,
        seed=3, plan=plan,
    )
    stats = chip.run_cycles(3_000, warmup=500)
    assert chip.placement.tiles_of(0) == (1, 2, 7, 13)
    assert stats.consolidation["vm_migrate"] == 1
    chip.verify_coherence()


# ---------------------------------------------------------------------------
# apply_event unit semantics (no run needed)


def test_apply_migrate_remaps_placement_and_cores():
    chip = dynamic_chip("directory")
    old = chip.placement.tiles_of(1)
    cores_before = {c.tile for c in chip.cores}
    chip.apply_event(ConsolidationEvent(1, "vm_migrate", 1, tiles=FREE_AREA))
    assert chip.placement.tiles_of(1) == FREE_AREA
    expected = (cores_before - set(old)) | set(FREE_AREA)
    assert {c.tile for c in chip.cores} == expected
    assert chip.protocol.stats.consolidation == {"vm_migrate": 1}
    # vacated tiles are inactive until something moves back in
    assert set(old) <= chip.protocol._inactive_tiles


def test_apply_depart_stops_cores_and_frees_tiles():
    chip = dynamic_chip("dico")
    tiles = chip.placement.tiles_of(2)
    chip.apply_event(ConsolidationEvent(1, "vm_depart", 2))
    assert 2 not in chip.placement.vms
    for core in chip.cores:
        if core.tile in tiles:
            assert core.done
    assert set(tiles) <= chip.protocol._inactive_tiles


def test_apply_arrive_starts_new_cores():
    chip = dynamic_chip("vh")
    n_before = len(chip.cores)
    chip.apply_event(ConsolidationEvent(1, "vm_arrive", 3, tiles=FREE_AREA))
    assert chip.placement.tiles_of(3) == FREE_AREA
    assert len(chip.cores) == n_before + len(FREE_AREA)
    assert not (set(FREE_AREA) & chip.protocol._inactive_tiles)


def test_apply_unknown_kind_raises():
    chip = dynamic_chip("directory")
    with pytest.raises(ValueError, match="unknown consolidation"):
        chip.apply_event(ConsolidationEvent(1, "vm_implode", 0))


def test_per_vm_operations_keeps_departed_vm_of_record():
    """Ops committed by a VM that later departed still attribute to it
    (the fairness table must not lose transactions mid-table)."""
    chip = dynamic_chip("directory", plan=storyline())
    chip.run_cycles(4_000, warmup=1_000)
    totals = chip.per_vm_operations()
    assert set(totals) == {0, 1, 2, 3}
    assert totals[2] > 0  # departed at 3200 but ran 3200 cycles
    assert all(v >= 0 for v in totals.values())


# ---------------------------------------------------------------------------
# the bit-identity contract: no plan == empty plan, on both engines


@pytest.mark.parametrize("protocol", sorted(PROTOCOLS))
def test_empty_plan_is_bit_identical_on_both_engines(protocol):
    spec = dict(config=tiny_chip(), n_vms=3, seed=2)
    reference = Chip(protocol, "mixed-com", **spec).run_cycles(
        3_000, warmup=500
    )
    empty = Chip(
        protocol, "mixed-com", plan=ConsolidationPlan(), **spec
    ).run_cycles(3_000, warmup=500)
    array = ArrayChip(
        protocol, "mixed-com", plan=ConsolidationPlan(), **spec
    ).run_cycles(3_000, warmup=500)
    assert stats_to_dict(empty) == stats_to_dict(reference)
    assert stats_to_dict(array) == stats_to_dict(reference)


def test_armed_plan_forces_object_path_on_array_engine():
    """simx cannot replay mid-run topology changes; a non-empty plan
    must transparently disarm the compiled fast path and still agree
    with the object engine."""
    plan = storyline()
    spec = dict(config=tiny_chip(), n_vms=3, seed=2)
    chip = ArrayChip("dico", "mixed-com", plan=plan, **spec)
    via_array = chip.run_cycles(4_000, warmup=1_000)
    assert not chip._armed
    reference = Chip("dico", "mixed-com", plan=storyline(), **spec).run_cycles(
        4_000, warmup=1_000
    )
    assert stats_to_dict(via_array) == stats_to_dict(reference)


def test_invalid_plan_rejected_at_run_time():
    from repro.sim.config import ConfigError

    plan = ConsolidationPlan(seed=0, events=(
        ConsolidationEvent(9_999, "dedup_break", 0, pages=1),
    ))
    chip = dynamic_chip("directory", plan=plan)
    with pytest.raises(ConfigError, match="outside the measurement"):
        chip.run_cycles(4_000, warmup=1_000)
