"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import SimulationError, Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(10, lambda: fired.append(("b", sim.now)))
    sim.schedule(5, lambda: fired.append(("a", sim.now)))
    sim.schedule(20, lambda: fired.append(("c", sim.now)))
    sim.run()
    assert fired == [("a", 5), ("b", 10), ("c", 20)]


def test_same_cycle_events_fire_in_scheduling_order():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(7, lambda i=i: fired.append(i))
    sim.run()
    assert fired == list(range(10))


def test_schedule_at_absolute_time():
    sim = Simulator()
    fired = []
    sim.schedule_at(42, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [42]


def test_schedule_in_past_raises():
    sim = Simulator()
    sim.schedule(10, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(5, lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule(-1, lambda: None)


def test_nested_scheduling_from_callback():
    sim = Simulator()
    fired = []

    def first():
        fired.append(sim.now)
        sim.schedule(3, lambda: fired.append(sim.now))

    sim.schedule(1, first)
    sim.run()
    assert fired == [1, 4]


def test_run_until_leaves_future_events_queued():
    sim = Simulator()
    fired = []
    sim.schedule(5, lambda: fired.append(5))
    sim.schedule(50, lambda: fired.append(50))
    end = sim.run(until=10)
    assert end == 10
    assert fired == [5]
    assert sim.pending == 1
    sim.run()
    assert fired == [5, 50]


def test_run_until_advances_clock_even_without_events():
    sim = Simulator()
    sim.run(until=100)
    assert sim.now == 100


def test_step_returns_false_when_empty():
    sim = Simulator()
    assert sim.step() is False


def test_event_budget_enforced():
    sim = Simulator(max_events=10)

    def rearm():
        sim.schedule(1, rearm)

    sim.schedule(1, rearm)
    with pytest.raises(SimulationError):
        sim.run()


def test_zero_delay_event_fires_at_current_time():
    sim = Simulator()
    fired = []
    sim.schedule(5, lambda: sim.schedule(0, lambda: fired.append(sim.now)))
    sim.run()
    assert fired == [5]


class TestEventBudget:
    """Regressions for the event-budget off-by-one (exactly
    ``max_events`` events may fire, never ``max_events + 1``)."""

    def test_exactly_max_events_fire_before_raise(self):
        sim = Simulator(max_events=3)
        fired = []
        for i in range(5):
            sim.schedule(i + 1, lambda i=i: fired.append(i))
        with pytest.raises(SimulationError):
            sim.run()
        assert fired == [0, 1, 2]  # budget events, not budget + 1

    def test_budget_boundary_is_not_an_error(self):
        sim = Simulator(max_events=3)
        fired = []
        for i in range(3):
            sim.schedule(i + 1, lambda i=i: fired.append(i))
        sim.run()
        assert fired == [0, 1, 2]

    def test_budget_enforced_with_until(self):
        """The budget applies on the ``until`` path too: the 4th event
        inside the window must not fire when the budget is 3."""
        sim = Simulator(max_events=3)
        fired = []
        for i in range(5):
            sim.schedule(i + 1, lambda i=i: fired.append(i))
        with pytest.raises(SimulationError):
            sim.run(until=100)
        assert fired == [0, 1, 2]

    def test_until_before_budget_returns_cleanly(self):
        """Events beyond ``until`` stay queued and do not count against
        the budget; the exact-budget run ends without raising."""
        sim = Simulator(max_events=2)
        fired = []
        sim.schedule(1, lambda: fired.append(1))
        sim.schedule(2, lambda: fired.append(2))
        sim.schedule(50, lambda: fired.append(50))
        assert sim.run(until=10) == 10
        assert fired == [1, 2]
        assert sim.pending == 1
