"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import SimulationError, Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(10, lambda: fired.append(("b", sim.now)))
    sim.schedule(5, lambda: fired.append(("a", sim.now)))
    sim.schedule(20, lambda: fired.append(("c", sim.now)))
    sim.run()
    assert fired == [("a", 5), ("b", 10), ("c", 20)]


def test_same_cycle_events_fire_in_scheduling_order():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(7, lambda i=i: fired.append(i))
    sim.run()
    assert fired == list(range(10))


def test_schedule_at_absolute_time():
    sim = Simulator()
    fired = []
    sim.schedule_at(42, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [42]


def test_schedule_in_past_raises():
    sim = Simulator()
    sim.schedule(10, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(5, lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule(-1, lambda: None)


def test_nested_scheduling_from_callback():
    sim = Simulator()
    fired = []

    def first():
        fired.append(sim.now)
        sim.schedule(3, lambda: fired.append(sim.now))

    sim.schedule(1, first)
    sim.run()
    assert fired == [1, 4]


def test_run_until_leaves_future_events_queued():
    sim = Simulator()
    fired = []
    sim.schedule(5, lambda: fired.append(5))
    sim.schedule(50, lambda: fired.append(50))
    end = sim.run(until=10)
    assert end == 10
    assert fired == [5]
    assert sim.pending == 1
    sim.run()
    assert fired == [5, 50]


def test_run_until_advances_clock_even_without_events():
    sim = Simulator()
    sim.run(until=100)
    assert sim.now == 100


def test_step_returns_false_when_empty():
    sim = Simulator()
    assert sim.step() is False


def test_event_budget_enforced():
    sim = Simulator(max_events=10)

    def rearm():
        sim.schedule(1, rearm)

    sim.schedule(1, rearm)
    with pytest.raises(SimulationError):
        sim.run()


def test_zero_delay_event_fires_at_current_time():
    sim = Simulator()
    fired = []
    sim.schedule(5, lambda: sim.schedule(0, lambda: fired.append(sim.now)))
    sim.run()
    assert fired == [5]


class TestEventBudget:
    """Regressions for the event-budget off-by-one (exactly
    ``max_events`` events may fire, never ``max_events + 1``)."""

    def test_exactly_max_events_fire_before_raise(self):
        sim = Simulator(max_events=3)
        fired = []
        for i in range(5):
            sim.schedule(i + 1, lambda i=i: fired.append(i))
        with pytest.raises(SimulationError):
            sim.run()
        assert fired == [0, 1, 2]  # budget events, not budget + 1

    def test_budget_boundary_is_not_an_error(self):
        sim = Simulator(max_events=3)
        fired = []
        for i in range(3):
            sim.schedule(i + 1, lambda i=i: fired.append(i))
        sim.run()
        assert fired == [0, 1, 2]

    def test_budget_enforced_with_until(self):
        """The budget applies on the ``until`` path too: the 4th event
        inside the window must not fire when the budget is 3."""
        sim = Simulator(max_events=3)
        fired = []
        for i in range(5):
            sim.schedule(i + 1, lambda i=i: fired.append(i))
        with pytest.raises(SimulationError):
            sim.run(until=100)
        assert fired == [0, 1, 2]

    def test_until_before_budget_returns_cleanly(self):
        """Events beyond ``until`` stay queued and do not count against
        the budget; the exact-budget run ends without raising."""
        sim = Simulator(max_events=2)
        fired = []
        sim.schedule(1, lambda: fired.append(1))
        sim.schedule(2, lambda: fired.append(2))
        sim.schedule(50, lambda: fired.append(50))
        assert sim.run(until=10) == 10
        assert fired == [1, 2]
        assert sim.pending == 1


def test_schedule_fast_matches_schedule_at_ordering():
    # schedule_fast skips validation but must keep (time, seq) ordering:
    # interleaving it with schedule_at preserves insertion order at ties
    sim = Simulator()
    fired = []
    sim.schedule_at(5, lambda: fired.append("at-5"))
    sim.schedule_fast(5, lambda: fired.append("fast-5"))
    sim.schedule_fast(3, lambda: fired.append("fast-3"))
    sim.schedule_at(5, lambda: fired.append("at-5-late"))
    sim.run()
    assert fired == ["fast-3", "at-5", "fast-5", "at-5-late"]


def test_bounded_run_without_budget_matches_general_loop():
    # run(until=...) with no event budget takes a specialized loop; it
    # must behave exactly like the general loop of a budgeted engine
    def exercise(sim):
        fired = []
        sim.schedule(2, lambda: fired.append(sim.now))
        sim.schedule(2, lambda: sim.schedule(3, lambda: fired.append(sim.now)))
        sim.schedule(9, lambda: fired.append(sim.now))
        end = sim.run(until=7)
        return fired, end, sim.now, sim.pending

    assert exercise(Simulator()) == exercise(Simulator(max_events=1000))


def test_bounded_run_advances_to_until_and_keeps_future_events():
    sim = Simulator()
    fired = []
    sim.schedule(10, lambda: fired.append(sim.now))
    assert sim.run(until=4) == 4
    assert sim.now == 4 and fired == [] and sim.pending == 1
    sim.run(until=12)
    assert fired == [10] and sim.now == 12


def test_run_until_is_published_during_run_only():
    sim = Simulator()
    seen = []
    sim.schedule(1, lambda: seen.append(sim._run_until))
    sim.run(until=6)
    assert seen == [6]
    assert sim._run_until is None  # reset even on normal exit
