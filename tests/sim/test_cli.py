"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


def test_storage_command(capsys):
    assert main(["storage"]) == 0
    out = capsys.readouterr().out
    assert "Table V" in out
    assert "12.56" in out
    assert "dico-arin" in out


def test_leakage_command(capsys):
    assert main(["leakage"]) == 0
    out = capsys.readouterr().out
    assert "239.0 mW" in out


def test_workloads_command(capsys):
    assert main(["workloads"]) == 0
    out = capsys.readouterr().out
    for name in ("apache", "jbb", "tomcatv", "mixed-sci"):
        assert name in out


def test_run_command_emits_json(capsys):
    rc = main([
        "run", "--protocol", "dico", "--workload", "radix",
        "--cycles", "2000", "--warmup", "0", "--seed", "2",
    ])
    assert rc == 0
    data = json.loads(capsys.readouterr().out)
    assert data["protocol"] == "dico"
    assert data["workload"] == "radix"
    assert data["operations"] > 0
    assert "miss_categories" in data


def test_compare_command(capsys):
    rc = main([
        "compare", "--workload", "lu", "--cycles", "2000", "--warmup", "0",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    for proto in ("directory", "dico", "dico-providers", "dico-arin"):
        assert proto in out


def test_alt_placement_flag(capsys):
    rc = main([
        "run", "--protocol", "dico-arin", "--workload", "radix",
        "--cycles", "2000", "--warmup", "0", "--placement", "alt",
    ])
    assert rc == 0


def test_bad_protocol_rejected():
    # "mesi" resolves as an alias now; a truly unknown name still exits
    with pytest.raises(SystemExit):
        main(["run", "--protocol", "mosi"])


def test_sweep_rejects_unknown_override_key(capsys):
    rc = main([
        "sweep", "--protocols", "dico", "--workloads", "radix",
        "--cycles", "1000", "--warmup", "0", "--no-cache", "--quiet",
        "--set", "l1c_entres=64",
    ])
    assert rc == 2
    err = capsys.readouterr().err
    assert "unknown config override key" in err
    assert "l1c_entries" in err  # the valid keys are listed


def test_run_checker_flag(capsys):
    rc = main([
        "run", "--protocol", "directory", "--workload", "radix",
        "--cycles", "1000", "--warmup", "0", "--no-checker",
    ])
    assert rc == 0
    assert json.loads(capsys.readouterr().out)["operations"] > 0


def test_trace_command_writes_trace_and_manifest(tmp_path, capsys):
    out = tmp_path / "t.jsonl"
    rc = main([
        "trace", "dico-providers", "radix",
        "--cycles", "2000", "--warmup", "500", "--output", str(out),
    ])
    assert rc == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["events"] > 0
    assert out.exists()
    manifest = json.loads((tmp_path / "t.jsonl.manifest.json").read_text())
    assert manifest["protocol"] == "dico-providers"
    assert "tracer" in manifest["instruments"]


def test_trace_command_filters(tmp_path, capsys):
    out = tmp_path / "f.jsonl"
    rc = main([
        "trace", "dico", "radix", "--cycles", "2000", "--warmup", "500",
        "--output", str(out), "--filter", "events=transition,tile=0+1",
    ])
    assert rc == 0
    events = [json.loads(x) for x in out.read_text().splitlines()]
    assert events, "filtered trace should still catch tile-0/1 transitions"
    assert all(e["event"] == "transition" for e in events)
    assert all(e["tile"] in (0, 1) for e in events)


def test_trace_command_rejects_bad_filter(tmp_path, capsys):
    rc = main([
        "trace", "dico", "radix", "--output", str(tmp_path / "x.jsonl"),
        "--filter", "bogus=1",
    ])
    assert rc == 2
    assert "bad trace filter" in capsys.readouterr().err


def _sweep_args(tmp_path, *extra):
    return [
        "sweep", "--protocols", "dico", "--workloads", "radix,lu",
        "--seeds", "1", "--cycles", "1500", "--warmup", "500",
        "--cache-dir", str(tmp_path / "cache"), "--quiet", *extra,
    ]


def test_sweep_chaos_skip_exits_3_and_writes_failures(tmp_path, capsys):
    plan = tmp_path / "plan.json"
    plan.write_text(
        '{"seed": 1, "rules": [{"kind": "crash", "rate": 1.0}]}'
    )
    failures = tmp_path / "failures.json"
    rc = main(_sweep_args(
        tmp_path, "--fault-plan", str(plan), "--on-failure", "skip",
        "--failures", str(failures),
    ))
    assert rc == 3
    lines = [json.loads(x) for x in capsys.readouterr().out.splitlines()]
    assert all("failure" in line for line in lines)
    assert all(line["failure"]["kind"] == "crash" for line in lines)
    summary = json.loads(failures.read_text())
    assert summary["failed"] == 2 and summary["ok"] == 0


def test_sweep_resume_completes_after_chaos(tmp_path, capsys):
    plan = tmp_path / "plan.json"
    plan.write_text(
        '{"seed": 1, "rules": [{"kind": "crash", "rate": 1.0}]}'
    )
    rc = main(_sweep_args(
        tmp_path, "--fault-plan", str(plan), "--on-failure", "skip",
    ))
    assert rc == 3
    capsys.readouterr()
    # resume without the plan: everything recovers
    rc = main(_sweep_args(tmp_path, "--resume"))
    assert rc == 0
    out, err = capsys.readouterr()
    lines = [json.loads(x) for x in out.splitlines()]
    assert all("summary" in line for line in lines)
    assert "resume:" in err and "2 failed" in err
    # matches a fault-free run bit for bit
    rc = main(_sweep_args(tmp_path))
    assert rc == 0
    assert [json.loads(x) for x in capsys.readouterr().out.splitlines()] \
        == lines


def test_sweep_resume_without_journal_exits_2(tmp_path, capsys):
    rc = main(_sweep_args(tmp_path, "--resume"))
    assert rc == 2
    assert "nothing to resume" in capsys.readouterr().err


def test_sweep_rejects_bad_fault_plan(tmp_path, capsys):
    plan = tmp_path / "plan.json"
    plan.write_text('{"rules": [{"kind": "meteor"}]}')
    rc = main(_sweep_args(tmp_path, "--fault-plan", str(plan)))
    assert rc == 2
    assert "bad fault plan" in capsys.readouterr().err


def test_sweep_retry_flags_recover(tmp_path, capsys):
    plan = tmp_path / "plan.json"
    plan.write_text(
        '{"seed": 1, "rules": [{"kind": "crash", "rate": 1.0}]}'
    )
    rc = main(_sweep_args(
        tmp_path, "--fault-plan", str(plan), "--retries", "1",
    ))
    assert rc == 0
    lines = [json.loads(x) for x in capsys.readouterr().out.splitlines()]
    assert all("summary" in line for line in lines)
