"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


def test_storage_command(capsys):
    assert main(["storage"]) == 0
    out = capsys.readouterr().out
    assert "Table V" in out
    assert "12.56" in out
    assert "dico-arin" in out


def test_leakage_command(capsys):
    assert main(["leakage"]) == 0
    out = capsys.readouterr().out
    assert "239.0 mW" in out


def test_workloads_command(capsys):
    assert main(["workloads"]) == 0
    out = capsys.readouterr().out
    for name in ("apache", "jbb", "tomcatv", "mixed-sci"):
        assert name in out


def test_run_command_emits_json(capsys):
    rc = main([
        "run", "--protocol", "dico", "--workload", "radix",
        "--cycles", "2000", "--warmup", "0", "--seed", "2",
    ])
    assert rc == 0
    data = json.loads(capsys.readouterr().out)
    assert data["protocol"] == "dico"
    assert data["workload"] == "radix"
    assert data["operations"] > 0
    assert "miss_categories" in data


def test_compare_command(capsys):
    rc = main([
        "compare", "--workload", "lu", "--cycles", "2000", "--warmup", "0",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    for proto in ("directory", "dico", "dico-providers", "dico-arin"):
        assert proto in out


def test_alt_placement_flag(capsys):
    rc = main([
        "run", "--protocol", "dico-arin", "--workload", "radix",
        "--cycles", "2000", "--warmup", "0", "--placement", "alt",
    ])
    assert rc == 0


def test_bad_protocol_rejected():
    with pytest.raises(SystemExit):
        main(["run", "--protocol", "mesi"])
