"""Input-validation hardening: structured ConfigError diagnostics."""

import dataclasses

import pytest

from repro.sim.config import (
    CacheGeometry,
    ConfigError,
    MemoryConfig,
    NocConfig,
    small_test_chip,
)
from repro.sweep.spec import RunSpec
from repro.workloads.spec import WorkloadSpec


def test_config_error_is_a_value_error_and_names_the_key():
    with pytest.raises(ConfigError) as exc:
        CacheGeometry(size_bytes=1 << 10, assoc=2, block_bytes=48)
    assert isinstance(exc.value, ValueError)
    assert exc.value.key == "block_bytes"
    assert "block_bytes" in str(exc.value)


@pytest.mark.parametrize(
    "kwargs, key",
    [
        (dict(size_bytes=1 << 10, assoc=2, block_bytes=48), "block_bytes"),
        (dict(size_bytes=1 << 10, assoc=0), "assoc"),
        (dict(size_bytes=100, assoc=4), "size_bytes"),
        (dict(size_bytes=(1 << 10) + 64, assoc=1), "size_bytes"),
        (dict(size_bytes=1 << 10, assoc=2, tag_latency=-1), "tag_latency"),
        (dict(size_bytes=1 << 10, assoc=2, data_latency=-2), "data_latency"),
    ],
)
def test_cache_geometry_rejections(kwargs, key):
    with pytest.raises(ConfigError) as exc:
        CacheGeometry(**kwargs)
    assert exc.value.key == key


def test_noc_rejects_negative_stage_latency():
    with pytest.raises(ConfigError):
        NocConfig(link_cycles=-1)
    with pytest.raises(ConfigError) as exc:
        NocConfig(flit_bytes=0)
    assert exc.value.key == "flit_bytes"


def test_memory_rejects_bad_page_size():
    with pytest.raises(ConfigError) as exc:
        MemoryConfig(page_bytes=3000)
    assert exc.value.key == "page_bytes"
    with pytest.raises(ConfigError):
        MemoryConfig(latency_cycles=-5)


def test_chip_rejects_areas_not_dividing_tiles():
    with pytest.raises(ConfigError) as exc:
        small_test_chip(mesh_width=4, mesh_height=4, n_areas=3)
    assert exc.value.key == "n_areas"


def test_chip_rejects_mismatched_block_sizes():
    good = small_test_chip()
    with pytest.raises(ConfigError) as exc:
        dataclasses.replace(
            good,
            l2=dataclasses.replace(good.l2, block_bytes=good.l1.block_bytes * 2),
        )
    assert exc.value.key == "l2.block_bytes"


def test_chip_rejects_too_few_address_bits():
    with pytest.raises(ConfigError) as exc:
        dataclasses.replace(small_test_chip(), phys_addr_bits=10)
    assert exc.value.key == "phys_addr_bits"


# ---------------------------------------------------------------------------
# RunSpec

def test_runspec_defaults_validate():
    RunSpec(protocol="dico", workload="apache")  # no raise


@pytest.mark.parametrize(
    "kwargs, key",
    [
        (dict(protocol="nope"), "protocol"),
        (dict(cycles=0), "cycles"),
        (dict(warmup=-1), "warmup"),
        (dict(n_vms=0), "n_vms"),
        (dict(placement="diagonal"), "placement"),
        (dict(placement=3.14), "placement"),
    ],
)
def test_runspec_rejections(kwargs, key):
    base = dict(protocol="dico", workload="apache")
    base.update(kwargs)
    with pytest.raises(ConfigError) as exc:
        RunSpec(**base)
    assert exc.value.key == key
    assert key in str(exc.value)


def test_runspec_explicit_placement_mapping_accepted():
    RunSpec(protocol="dico", workload="apache", placement={0: (0, 1)})


# ---------------------------------------------------------------------------
# WorkloadSpec

def _spec(**kw):
    base = dict(
        name="t",
        private_pages=4,
        vm_shared_pages=4,
        dedup_pages=4,
        frac_private=0.5,
        frac_vm_shared=0.3,
        frac_dedup=0.2,
        write_private=0.1,
        write_vm_shared=0.1,
        write_dedup=0.0,
        zipf_s=0.8,
    )
    base.update(kw)
    return WorkloadSpec(**base)


def test_workload_rejects_zero_length_address_space():
    with pytest.raises(ValueError, match="zero-length"):
        _spec(private_pages=0, vm_shared_pages=0, dedup_pages=0)


def test_workload_rejects_negative_pages():
    with pytest.raises(ValueError, match="private_pages"):
        _spec(private_pages=-1)


def test_workload_rejects_inverted_think_range():
    with pytest.raises(ValueError, match="think"):
        _spec(think=(5, 2))
