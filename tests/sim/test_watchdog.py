"""Livelock watchdog tests: engine trip wire, chip diagnostics,
manifest verdict, and the bit-identity guarantee."""

import json

import pytest

from repro.api import RunSpec, TraceOptions, simulate
from repro.sim.chip import Chip
from repro.sim.config import small_test_chip
from repro.sim.engine import (
    LivelockError,
    ProgressWatchdog,
    SimulationError,
    Simulator,
)
from repro.stats.io import stats_to_dict
from repro.sweep.spec import config_to_dict

TINY = config_to_dict(small_test_chip())


def tiny_spec(**kwargs):
    fields = dict(
        protocol="dico",
        workload="radix",
        seed=1,
        cycles=1_500,
        warmup=500,
        config=TINY,
    )
    fields.update(kwargs)
    return RunSpec(**fields)


# -------------------------------------------------------------- engine


def progress_holder(values):
    it = iter(values)
    return lambda: next(it)


def test_watchdog_trips_on_flat_progress():
    sim = Simulator(
        watchdog=ProgressWatchdog(
            window_events=10, progress_fn=progress_holder([5, 5, 5])
        )
    )

    def spin():
        sim.schedule(1, spin)

    sim.schedule(0, spin)
    with pytest.raises(LivelockError, match="no operation retired"):
        sim.run(until=10_000)


def test_watchdog_quiet_while_progress_continues():
    counter = {"ops": 0}

    sim = Simulator(
        watchdog=ProgressWatchdog(
            window_events=5, progress_fn=lambda: counter["ops"]
        )
    )

    def work():
        counter["ops"] += 1
        sim.schedule(1, work)

    sim.schedule(0, work)
    assert sim.run(until=200) == 200


def test_watchdog_diagnostic_embedded():
    wd = ProgressWatchdog(
        window_events=2,
        progress_fn=progress_holder([1, 1]),
        diagnose_fn=lambda: {"tiles": [3, 7], "blocks": [42]},
    )
    sim = Simulator(watchdog=wd)

    def spin():
        sim.schedule(1, spin)

    sim.schedule(0, spin)
    with pytest.raises(LivelockError) as exc_info:
        sim.run(until=100)
    assert exc_info.value.stalled == {"tiles": [3, 7], "blocks": [42]}
    assert "tiles=[3, 7]" in str(exc_info.value)


def test_watchdog_respects_event_budget():
    # the budget check still fires first in the watched loop
    sim = Simulator(
        max_events=7,
        watchdog=ProgressWatchdog(
            window_events=1000, progress_fn=progress_holder([1] * 100)
        ),
    )

    def spin():
        sim.schedule(1, spin)

    sim.schedule(0, spin)
    with pytest.raises(SimulationError, match="event budget"):
        sim.run()


def test_watchdog_resets_between_runs():
    wd = ProgressWatchdog(window_events=3, progress_fn=lambda: 1)
    sim = Simulator(watchdog=wd)
    wd._last = 1  # stale sample from a previous run
    counter = {"n": 0}

    def brief():
        if counter["n"] < 2:
            counter["n"] += 1
            sim.schedule(1, brief)

    sim.schedule(0, brief)
    # only 3 events total => one check at most, and reset() forgot the
    # stale sample, so no trip
    assert sim.run(until=10) == 10


def test_window_must_be_positive():
    with pytest.raises(ValueError):
        ProgressWatchdog(window_events=0)


# ---------------------------------------------------------------- chip


def wedge(chip):
    """Force a livelock: every access retries forever, block 42 busy."""
    from repro.core.protocols.base import AccessResult

    def never_succeeds(tile, kind, addr, now):
        return AccessResult(latency=1, retry_at=now + 1)

    for core in chip.cores:
        core._access = never_succeeds
    chip.protocol.access = never_succeeds  # reference path binding
    chip.protocol._busy[42] = 10**9


def test_chip_watchdog_names_stalled_tiles_and_blocks(monkeypatch):
    monkeypatch.setenv("REPRO_WATCHDOG_WINDOW", "500")
    chip = Chip("dico", "radix", config=small_test_chip(), seed=1)
    wedge(chip)
    with pytest.raises(LivelockError) as exc_info:
        chip.run_cycles(5_000, warmup=0)
    stalled = exc_info.value.stalled
    assert stalled["blocks"] == [42]
    assert stalled["tiles"], "expected at least one stalled tile"


def test_chip_watchdog_env_off(monkeypatch):
    monkeypatch.setenv("REPRO_WATCHDOG", "0")
    chip = Chip("dico", "radix", config=small_test_chip(), seed=1)
    assert chip.sim.watchdog is None


def test_stats_bit_identical_watchdog_on_off(monkeypatch):
    spec = tiny_spec()
    on = stats_to_dict(spec.execute())
    monkeypatch.setenv("REPRO_WATCHDOG", "0")
    off = stats_to_dict(spec.execute())
    assert on == off
    # a tight window changes nothing either
    monkeypatch.setenv("REPRO_WATCHDOG", "1")
    monkeypatch.setenv("REPRO_WATCHDOG_WINDOW", "50")
    tight = stats_to_dict(spec.execute())
    assert on == tight


# ------------------------------------------------------------ manifest


def test_manifest_records_ok_verdict(tmp_path):
    result = simulate(
        tiny_spec(), manifest_path=tmp_path / "run.manifest.json"
    )
    assert result.manifest.watchdog == "ok"
    assert "watchdog" in result.manifest.instruments
    doc = json.loads((tmp_path / "run.manifest.json").read_text())
    assert doc["watchdog"] == "ok"


def test_manifest_records_off_verdict(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_WATCHDOG", "0")
    result = simulate(
        tiny_spec(), manifest_path=tmp_path / "run.manifest.json"
    )
    assert result.manifest.watchdog == "off"
    assert "watchdog" not in result.manifest.instruments


def test_manifest_survives_livelock(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_WATCHDOG_WINDOW", "500")
    spec = tiny_spec()
    real_build = RunSpec.build_chip

    def wedged_build(self, engine=None):
        chip = real_build(self, engine=engine)
        wedge(chip)
        return chip

    monkeypatch.setattr(RunSpec, "build_chip", wedged_build)
    manifest_path = tmp_path / "run.manifest.json"
    with pytest.raises(LivelockError):
        simulate(spec, manifest_path=manifest_path)
    doc = json.loads(manifest_path.read_text())
    assert doc["watchdog"].startswith("livelock: no operation retired")
    assert "blocks=[42]" in doc["watchdog"]


def test_traced_livelock_closes_trace(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_WATCHDOG_WINDOW", "500")
    real_build = RunSpec.build_chip

    def wedged_build(self, engine=None):
        chip = real_build(self, engine=engine)
        wedge(chip)
        return chip

    monkeypatch.setattr(RunSpec, "build_chip", wedged_build)
    trace_path = tmp_path / "run.jsonl"
    with pytest.raises(LivelockError):
        simulate(tiny_spec(), trace=TraceOptions(path=trace_path))
    # the sink was closed and the manifest written despite the abort
    assert trace_path.exists()
    doc = json.loads(
        (tmp_path / "run.jsonl.manifest.json").read_text()
    )
    assert doc["watchdog"].startswith("livelock")
