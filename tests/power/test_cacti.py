"""Validation of the leakage model against Table VI."""

import pytest

from repro.power.cacti import LeakageModel, leakage_table


@pytest.fixture(scope="module")
def table():
    return leakage_table()


def test_directory_row_is_calibrated_exactly(table):
    d = table["directory"]
    assert d.total_mw == pytest.approx(239.0, abs=0.5)
    assert d.tag_mw == pytest.approx(37.0, abs=0.1)


def test_dico_row_predicted(table):
    """Table VI: DiCo 241 mW total (+1%), 39 mW tags (+5%)."""
    d = table["dico"]
    assert d.total_mw == pytest.approx(241, abs=2)
    assert d.tag_mw == pytest.approx(39, abs=1.5)


def test_providers_row_predicted(table):
    """Table VI: DiCo-Providers 222 mW total (-7%), 20 mW tags (-45%)."""
    d = table["dico-providers"]
    assert d.total_mw == pytest.approx(222, abs=2)
    assert d.tag_mw == pytest.approx(20, abs=1.5)


def test_arin_row_predicted(table):
    """Table VI: DiCo-Arin 219 mW total (-8%), 17 mW tags (-54%)."""
    d = table["dico-arin"]
    assert d.total_mw == pytest.approx(219, abs=2)
    assert d.tag_mw == pytest.approx(17, abs=2)


def test_relative_reductions_match_abstract(table):
    """45-54% tag leakage reduction for the area protocols."""
    base = table["directory"]
    prov = table["dico-providers"].vs(base)
    arin = table["dico-arin"].vs(base)
    assert prov["tag_pct"] == pytest.approx(-45, abs=4)
    assert arin["tag_pct"] == pytest.approx(-54, abs=4)
    assert prov["total_pct"] == pytest.approx(-7, abs=1.5)
    assert arin["total_pct"] == pytest.approx(-8, abs=1.5)


def test_structure_leakage_monotone_in_bits():
    m = LeakageModel()
    assert m.structure_leakage(0, is_tag=True) == 0.0
    small = m.structure_leakage(1 << 10, is_tag=True)
    big = m.structure_leakage(1 << 20, is_tag=True)
    assert 0 < small < big


def test_tag_arrays_leak_more_per_bit_than_data():
    m = LeakageModel()
    bits = 1 << 20
    assert m.structure_leakage(bits, is_tag=True) > m.structure_leakage(
        bits, is_tag=False
    )
