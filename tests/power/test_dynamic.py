"""Unit tests for the dynamic energy model."""

import pytest

from repro.power.dynamic import (
    FLIT_ENERGY,
    ROUTE_ENERGY,
    DynamicEnergyModel,
    EnergyBreakdown,
)
from repro.stats.counters import RunStats


def test_network_constants_follow_barrow_williams():
    """Sec. V-A: routing a message = reading an L1 block = 4 flits."""
    assert ROUTE_ENERGY == 1.0
    assert FLIT_ENERGY == pytest.approx(ROUTE_ENERGY / 4)


def test_l1_data_read_is_the_unit():
    m = DynamicEnergyModel("directory")
    assert m.data_access_energy("l1") == pytest.approx(1.0)


def test_l2_reads_cost_more_than_l1():
    """Sec. V-C: 'L2 block reads are more power consuming than L1'."""
    m = DynamicEnergyModel("directory")
    assert m.data_access_energy("l2") > 2.0  # sqrt(8) for the 8x bank


def test_dico_l1_tags_cost_more_than_directory():
    """Fig. 8a: the full-map in the L1 entries makes DiCo tag accesses
    more expensive."""
    directory = DynamicEnergyModel("directory")
    dico = DynamicEnergyModel("dico")
    providers = DynamicEnergyModel("dico-providers")
    arin = DynamicEnergyModel("dico-arin")
    assert dico.tag_access_energy("l1") > directory.tag_access_energy("l1")
    # the area protocols shrink the L1 directory payload
    assert providers.tag_access_energy("l1") < dico.tag_access_energy("l1")
    assert arin.tag_access_energy("l1") < providers.tag_access_energy("l1")


def test_l2_tag_energy_ordering():
    """Smaller L2 directory payloads -> cheaper L2 tag accesses."""
    e = {
        p: DynamicEnergyModel(p).tag_access_energy("l2")
        for p in ("directory", "dico", "dico-providers", "dico-arin")
    }
    assert e["dico-arin"] < e["dico-providers"] < e["directory"]
    assert e["directory"] == pytest.approx(e["dico"])  # both full-map


def test_evaluate_accumulates_events():
    m = DynamicEnergyModel("directory")
    stats = RunStats(protocol="directory", workload="x")
    stats.structure("l1").tag_reads = 10
    stats.structure("l1").data_reads = 4
    stats.structure("l2").data_writes = 2
    stats.network.flit_link_traversals = 100
    stats.network.routing_events = 8
    out = m.evaluate(stats)
    assert out.cache_events["l1_tag"] == pytest.approx(
        10 * m.tag_access_energy("l1")
    )
    assert out.cache_events["l1_data"] == pytest.approx(4 * 1.0)
    assert out.cache_events["l2_data"] == pytest.approx(
        2 * m.data_access_energy("l2")
    )
    assert out.link_energy == pytest.approx(25.0)
    assert out.routing_energy == pytest.approx(8.0)
    assert out.total == pytest.approx(out.cache_energy + out.network_energy)


def test_normalized_breakdown():
    b = EnergyBreakdown(protocol="p", workload="w")
    b.cache_events = {"l1_data": 10.0}
    b.link_energy = 5.0
    b.routing_energy = 5.0
    n = b.normalized(reference=10.0)
    assert n == {
        "cache": 1.0, "links": 0.5, "routing": 0.5, "bus": 0.0, "total": 2.0,
    }


def test_dircache_energy_only_for_directory():
    assert DynamicEnergyModel("directory").tag_access_energy("dir") > 0
    assert DynamicEnergyModel("dico").tag_access_energy("dir") == 0.0


def test_coherence_cache_energy_only_for_dico_family():
    assert DynamicEnergyModel("dico").tag_access_energy("l1c") > 0
    assert DynamicEnergyModel("directory").tag_access_energy("l1c") == 0.0
