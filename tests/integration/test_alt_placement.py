"""Integration tests for the Fig. 6 alternative VM placement."""

import pytest

from repro.core.area import AreaMap
from repro.sim.chip import Chip, PROTOCOLS
from repro.sim.config import small_test_chip
from repro.workloads.placement import VMPlacement


def alt_placement(cfg):
    return VMPlacement.alternative(cfg.mesh_width, cfg.mesh_height, 4)


@pytest.mark.parametrize("protocol", sorted(PROTOCOLS))
def test_alt_placement_runs_coherently(protocol):
    cfg = small_test_chip()
    chip = Chip(protocol, "apache", config=cfg,
                placement=alt_placement(cfg), seed=4)
    stats = chip.run_cycles(10_000)
    assert stats.operations > 0
    chip.verify_coherence()


def test_alt_placement_spans_areas():
    cfg = small_test_chip()
    areas = AreaMap(cfg.mesh_width, cfg.mesh_height, cfg.n_areas)
    p = alt_placement(cfg)
    for vm in range(4):
        assert len(p.areas_spanned(vm, areas)) >= 2


def test_alt_placement_increases_arin_inter_area_traffic():
    """Sec. V-C: the -alt configuration turns VM-private read/write data
    into inter-area data, raising DiCo-Arin broadcast invalidations."""
    cfg = small_test_chip()
    aligned = Chip("dico-arin", "apache", config=cfg, seed=4)
    s_aligned = aligned.run_cycles(15_000)
    alt = Chip("dico-arin", "apache", config=cfg,
               placement=alt_placement(cfg), seed=4)
    s_alt = alt.run_cycles(15_000)
    assert s_alt.broadcast_invalidations >= s_aligned.broadcast_invalidations


def test_providers_alt_placement_still_works():
    """Sec. V-D: providers also serve VM-private data when VMs span
    areas, keeping performance close to the aligned placement."""
    cfg = small_test_chip()
    chip = Chip("dico-providers", "volrend", config=cfg,
                placement=alt_placement(cfg), seed=4)
    stats = chip.run_cycles(15_000)
    chip.verify_coherence()
    assert stats.operations > 0
