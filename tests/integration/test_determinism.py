"""Determinism and accounting invariants across the sweep machinery.

The sweep runner's contract is bit-identity: the same :class:`RunSpec`
must produce the same ``RunStats.summary()`` whether it ran serially,
through a worker pool, or came back from the on-disk cache.  These
tests pin that contract for every protocol, and check the miss-
classification books balance (every L1 miss lands in exactly one
category of Fig. 5's taxonomy).
"""

import pytest

from repro.sim.chip import PROTOCOLS
from repro.sim.config import small_test_chip
from repro.stats.io import stats_to_dict
from repro.sweep import RunSpec, SweepRunner
from repro.sweep.spec import config_to_dict

TINY = config_to_dict(small_test_chip())


def spec_for(protocol: str, **kwargs) -> RunSpec:
    defaults = dict(
        protocol=protocol,
        workload="mixed-sci",
        seed=7,
        cycles=4_000,
        warmup=1_000,
        config=TINY,
    )
    defaults.update(kwargs)
    return RunSpec(**defaults)


@pytest.mark.parametrize("protocol", sorted(PROTOCOLS))
def test_same_spec_twice_is_bit_identical(protocol):
    spec = spec_for(protocol)
    a = spec.execute()
    b = spec.execute()
    assert a.summary() == b.summary()
    assert stats_to_dict(a) == stats_to_dict(b)


def test_pool_and_serial_agree_for_all_protocols():
    grid = [spec_for(p) for p in sorted(PROTOCOLS)]
    serial = SweepRunner(jobs=1).run(grid)
    pooled = SweepRunner(jobs=2).run(grid)
    for a, b in zip(serial, pooled):
        assert a.spec == b.spec
        assert a.stats.summary() == b.stats.summary()
        assert stats_to_dict(a.stats) == stats_to_dict(b.stats)


def test_cache_round_trip_is_bit_identical(tmp_path):
    spec = spec_for("dico-providers")
    cold = SweepRunner(jobs=1, cache_dir=str(tmp_path)).run([spec])[0]
    warm_runner = SweepRunner(jobs=1, cache_dir=str(tmp_path))
    warm = warm_runner.run([spec])[0]
    assert warm.cached and warm_runner.executed == 0
    assert stats_to_dict(warm.stats) == stats_to_dict(cold.stats)
    assert warm.stats.summary() == cold.stats.summary()


@pytest.mark.parametrize("protocol", sorted(PROTOCOLS))
def test_miss_categories_account_for_every_l1_miss(protocol):
    stats = spec_for(protocol, workload="apache").execute()
    assert stats.l1_misses > 0
    assert sum(stats.miss_categories.values()) == stats.l1_misses
    # the links accumulator samples exactly the classified misses
    assert stats.miss_latency.count == stats.l1_misses


@pytest.mark.parametrize("protocol", sorted(PROTOCOLS))
def test_fast_path_is_bit_identical_to_reference_path(protocol, monkeypatch):
    # the inline-draining core loop and the specialized engine loop
    # must reproduce the one-event-per-op reference path exactly —
    # every counter, latency accumulator and RNG draw
    spec = spec_for(protocol)
    monkeypatch.setenv("REPRO_FAST_PATH", "0")
    reference = spec.execute()
    monkeypatch.setenv("REPRO_FAST_PATH", "1")
    fast = spec.execute()
    assert stats_to_dict(fast) == stats_to_dict(reference)


def test_fast_path_reference_agreement_through_pool(monkeypatch):
    # reference stats computed serially must match fast-path stats
    # coming back from pool workers (the env propagates via fork)
    grid = [spec_for(p) for p in sorted(PROTOCOLS)]
    monkeypatch.setenv("REPRO_FAST_PATH", "0")
    reference = [stats_to_dict(spec.execute()) for spec in grid]
    monkeypatch.setenv("REPRO_FAST_PATH", "1")
    pooled = SweepRunner(jobs=2).run(grid)
    for doc, res in zip(reference, pooled):
        assert stats_to_dict(res.stats) == doc
