"""Full-chip integration runs: every protocol on several workloads.

Short trace-driven runs on a small chip with the coherence checker
verifying live state afterwards, plus determinism checks (identical
seeds must produce bit-identical statistics).
"""

import pytest

from repro.core.checker import CoherenceChecker
from repro.sim.chip import Chip, PROTOCOLS
from repro.sim.config import small_test_chip

CYCLES = 15_000


@pytest.mark.parametrize("protocol", sorted(PROTOCOLS))
@pytest.mark.parametrize("workload", ["apache", "radix", "mixed-sci"])
def test_run_and_verify(protocol, workload):
    chip = Chip(protocol, workload, config=small_test_chip(), seed=3)
    stats = chip.run_cycles(CYCLES)
    assert stats.operations > 0
    assert stats.protocol == protocol
    assert stats.workload == workload
    assert stats.cycles == CYCLES
    chip.verify_coherence()
    # the checker actually exercised reads and writes
    assert chip.protocol.checker.reads_checked > 0
    assert chip.protocol.checker.writes_committed > 0


@pytest.mark.parametrize("protocol", sorted(PROTOCOLS))
def test_determinism(protocol):
    def run():
        chip = Chip(protocol, "lu", config=small_test_chip(), seed=11)
        return chip.run_cycles(8_000)

    a, b = run(), run()
    assert a.operations == b.operations
    assert a.l1_misses == b.l1_misses
    assert a.network.flit_link_traversals == b.network.flit_link_traversals
    assert a.miss_categories == b.miss_categories


def test_run_ops_mode_reports_time():
    chip = Chip("dico", "radix", config=small_test_chip(), seed=5)
    stats = chip.run_ops(50)
    assert all(c.ops_done >= 50 for c in chip.cores)
    assert stats.cycles > 0


def test_warmup_resets_measurement_window():
    chip = Chip("directory", "apache", config=small_test_chip(), seed=5)
    stats = chip.run_cycles(5_000, warmup=5_000)
    assert stats.cycles == 5_000
    # operations counted only within the window
    assert stats.operations == sum(c.ops_done for c in chip.cores)
    chip.verify_coherence()


def test_shared_checker_across_protocol_and_chip():
    checker = CoherenceChecker()
    chip = Chip("dico-arin", "tomcatv", config=small_test_chip(), seed=9,
                checker=checker)
    chip.run_cycles(5_000)
    assert checker.writes_committed > 0


def test_make_protocol_rejects_unknown():
    with pytest.raises(ValueError):
        Chip("mosi", "apache", config=small_test_chip())


def test_protocol_kwargs_forwarded():
    chip = Chip(
        "dico-arin",
        "apache",
        config=small_test_chip(),
        protocol_kwargs={"provider_on_read": False},
    )
    assert chip.protocol.provider_on_read is False


@pytest.mark.parametrize("protocol", sorted(PROTOCOLS))
def test_jbb_pressure_run(protocol):
    """JBB's working set thrashes the small chip; invariants must hold
    through heavy L2 evictions (and Arin's broadcasts)."""
    chip = Chip(protocol, "jbb", config=small_test_chip(), seed=2)
    stats = chip.run_cycles(12_000)
    chip.verify_coherence()
    if protocol == "dico-arin":
        # inter-area blocks evicted from the tiny L2 -> broadcasts
        assert stats.network.broadcasts >= 0  # smoke: counted, not negative
