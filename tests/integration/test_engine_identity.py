"""Array-engine bit-identity: the tentpole contract of the simx layer.

The array engine (``REPRO_ENGINE=array``) is a pure performance
substitution — same events, same RNG draws, same counters.  These
tests pin ``stats_to_dict`` equality against the object engine over
the full matrix of protocols × fast-path settings, pin the env-knob
plumbing through ``repro.api.simulate``, and property-test the
differential harness's engine pin over random fuzz traces.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.chip import PROTOCOLS
from repro.sim.config import small_test_chip
from repro.stats.io import stats_to_dict
from repro.sweep import RunSpec
from repro.sweep.spec import config_to_dict
from repro.verify.differential import default_config, pin_engines, run_trace
from repro.verify.fuzzer import Op

TINY = config_to_dict(small_test_chip())


def spec_for(protocol: str, **kwargs) -> RunSpec:
    defaults = dict(
        protocol=protocol,
        workload="mixed-sci",
        seed=7,
        cycles=4_000,
        warmup=1_000,
        config=TINY,
    )
    defaults.update(kwargs)
    return RunSpec(**defaults)


@pytest.mark.parametrize("fast_path", ["0", "1"])
@pytest.mark.parametrize("protocol", sorted(PROTOCOLS))
def test_array_engine_is_bit_identical_to_object_engine(
    protocol, fast_path, monkeypatch
):
    # the identity matrix: every protocol, with the inline-draining
    # fast path both on and off, must produce byte-equal statistics
    monkeypatch.setenv("REPRO_FAST_PATH", fast_path)
    spec = spec_for(protocol)
    reference = spec.execute(engine="object")
    array = spec.execute(engine="array")
    assert stats_to_dict(array) == stats_to_dict(reference)


@pytest.mark.parametrize("protocol", ["mesi-snoop", "moesi-snoop", "dls"])
def test_array_engine_falls_back_for_uncompiled_families(protocol):
    # the registry capability flag gates arming: the new families have
    # no compiled mirrors, so ArrayChip must transparently keep the
    # object issue path — never arming, still bit-identical
    from repro.core.protocols.registry import REGISTRY
    from repro.sim.chip import PROTOCOLS
    from repro.simx.engine import ArrayChip
    from repro.sim.config import small_test_chip

    assert not REGISTRY.supports_simx(PROTOCOLS[protocol])
    chip = ArrayChip(protocol, "mixed-sci", config=small_test_chip(), seed=7)
    array = chip.run_cycles(3_000, warmup=500)
    assert not chip._armed
    assert chip._simx_tables is None
    reference = spec_for(protocol, cycles=3_000, warmup=500).execute(
        engine="object"
    )
    assert stats_to_dict(array) == stats_to_dict(reference)


def test_engine_env_knob_reaches_the_chip(monkeypatch):
    # REPRO_ENGINE=array via the environment must match an explicit
    # engine="array" — the knob the sweep workers inherit
    spec = spec_for("dico")
    explicit = spec.execute(engine="array")
    monkeypatch.setenv("REPRO_ENGINE", "array")
    via_env = spec.execute()
    assert stats_to_dict(via_env) == stats_to_dict(explicit)


def test_api_simulate_records_engine_in_manifest(tmp_path):
    from repro.api import simulate

    spec = spec_for("directory", cycles=1_500, warmup=500)
    result = simulate(
        spec, engine="array", manifest_path=tmp_path / "m_array.json",
    )
    assert result.manifest.engine == "array"
    default = simulate(
        spec, manifest_path=tmp_path / "m_obj.json",
    )
    assert default.manifest.engine == "object"


def test_unknown_engine_is_rejected():
    with pytest.raises(ValueError, match="warp"):
        spec_for("directory").execute(engine="warp")


# --- differential-harness engine pin over random traces -------------------

_ops = st.lists(
    st.builds(
        Op,
        tile=st.integers(min_value=0, max_value=3),
        block=st.integers(min_value=0, max_value=31),
        is_write=st.booleans(),
    ),
    min_size=1,
    max_size=60,
)


@settings(max_examples=20, deadline=None)
@given(ops=_ops, protocol=st.sampled_from(sorted(PROTOCOLS)))
def test_fuzz_traces_replay_identically_on_both_engines(ops, protocol):
    # property: any trace the fuzzer could produce yields the same
    # checker verdict, commit stream and op count on both engines
    obj, arr, violation = pin_engines(ops, protocol, default_config())
    assert violation is None
    assert obj.versions == arr.versions
    assert obj.ops_executed == arr.ops_executed
    assert (obj.violation is None) == (arr.violation is None)


def test_engines_agree_even_on_a_broken_protocol():
    # the pin must hold for failures too: a seeded mutation fires the
    # same violation at the same op on both engines, so engine choice
    # can never mask or move a protocol bug
    from repro.verify.fuzzer import generate_ops
    from repro.verify.mutations import make_mutated_factory

    _, ops = generate_ops(3, 120, 4, scenario="racing-upgrades")
    factory = make_mutated_factory("dico-lost-commit")
    obj, arr, violation = pin_engines(
        ops, "dico", default_config(), seed=3, factory=factory
    )
    assert violation is None  # engines agree (on the failure)
    assert obj.violation is not None and arr.violation is not None
    assert obj.violation.kind == arr.violation.kind
    assert obj.violation.op_index == arr.violation.op_index


@settings(max_examples=10, deadline=None)
@given(ops=_ops)
def test_array_trace_commit_counts_match_write_totals(ops):
    # on the array engine alone, the commit-count oracle must hold:
    # run_trace raises a violation otherwise, so a clean result means
    # every write committed exactly once
    res = run_trace("dico-providers", ops, default_config(), engine="array")
    assert res.violation is None
    assert res.ops_executed == len(ops)
