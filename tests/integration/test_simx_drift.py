"""Source-drift guard: simx flattened copies vs object-engine originals.

The array engine duplicates object-engine logic (see
``repro.simx.drift``).  These tests fail when any duplicated original
changes without the pins being refreshed — the signal to re-check the
corresponding simx mirror before trusting the engines' identity.
"""

from repro.simx import drift


def test_every_pin_resolves_and_fingerprints():
    fingerprints = drift.current_fingerprints()
    assert set(fingerprints) == set(drift.MIRRORED)
    for name, digest in fingerprints.items():
        assert len(digest) == 64, name


def test_no_source_drift_against_pins():
    problems = drift.diff_pins()
    assert not problems, (
        "object-engine source drifted from the simx mirrors:\n"
        + "\n".join(f"  {n}: {p}" for n, p in sorted(problems.items()))
        + "\nRe-check the simx mirror(s), then re-pin with "
        "`PYTHONPATH=src python -m repro.simx.drift --update`."
    )


def test_fingerprint_ignores_comments_but_not_structure():
    import ast
    import hashlib
    import textwrap

    def digest(src):
        return hashlib.sha256(
            ast.dump(ast.parse(textwrap.dedent(src))).encode()
        ).hexdigest()

    base = digest("def f(x):\n    return x + 1\n")
    commented = digest("def f(x):\n    # a comment\n    return x + 1\n")
    changed = digest("def f(x):\n    return x + 2\n")
    assert base == commented
    assert base != changed


def test_handler_compiler_registry_covers_simx_protocols():
    # the drift registry only helps if the compilers it guards are
    # actually armed for every protocol the array engine claims to
    # compile; protocols registered without simx support fall back to
    # the object engine and must NOT appear here
    from repro.core.protocols.registry import REGISTRY
    from repro.simx.handlers import HANDLER_COMPILERS

    simx = {
        info.cls for info in REGISTRY.infos() if info.supports_simx
    }
    fallback = {
        info.cls for info in REGISTRY.infos() if not info.supports_simx
    }
    assert set(HANDLER_COMPILERS) == simx
    assert not (set(HANDLER_COMPILERS) & fallback)
