"""Unit tests for statistics serialization and comparison."""

import pytest

from repro.sim.chip import Chip
from repro.sim.config import small_test_chip
from repro.stats.counters import RunStats
from repro.stats.io import (
    MetricDelta,
    compare_stats,
    load_stats,
    save_stats,
    stats_from_dict,
    stats_to_dict,
)


@pytest.fixture
def real_stats():
    chip = Chip("dico-providers", "radix", config=small_test_chip(), seed=4)
    return chip.run_cycles(5_000)


def test_round_trip_preserves_everything(real_stats, tmp_path):
    path = tmp_path / "run.json"
    save_stats(real_stats, path)
    loaded = load_stats(path)
    assert stats_to_dict(loaded) == stats_to_dict(real_stats)
    assert loaded.operations == real_stats.operations
    assert loaded.miss_categories == real_stats.miss_categories
    assert loaded.miss_latency.mean == real_stats.miss_latency.mean
    assert (
        loaded.network.flit_link_traversals
        == real_stats.network.flit_link_traversals
    )
    assert loaded.structure("l1").tag_reads == real_stats.structure("l1").tag_reads


def test_rates_survive_round_trip(real_stats, tmp_path):
    path = tmp_path / "run.json"
    save_stats(real_stats, path)
    loaded = load_stats(path)
    assert loaded.l1_miss_rate == real_stats.l1_miss_rate
    assert loaded.summary() == real_stats.summary()


def test_schema_version_checked():
    with pytest.raises(ValueError, match="schema"):
        stats_from_dict({"schema": 999})


def test_unknown_category_rejected(real_stats):
    data = stats_to_dict(real_stats)
    data["miss_categories"]["bogus"] = 1
    with pytest.raises(ValueError, match="unknown miss category"):
        stats_from_dict(data)


class TestCompare:
    def test_no_deltas_for_identical_runs(self, real_stats):
        assert compare_stats(real_stats, real_stats) == []

    def test_detects_changes_above_threshold(self):
        a = RunStats(operations=100, l1_misses=50)
        b = RunStats(operations=150, l1_misses=51)
        deltas = compare_stats(a, b, threshold=0.05)
        metrics = {d.metric for d in deltas}
        assert "operations" in metrics
        assert "l1_misses" not in metrics  # 2% < 5%

    def test_relative_math(self):
        d = MetricDelta("x", before=100, after=150)
        assert d.relative == pytest.approx(0.5)
        z = MetricDelta("x", before=0, after=5)
        assert z.relative == float("inf")
        zz = MetricDelta("x", before=0, after=0)
        assert zz.relative == 0.0

    def test_network_traffic_compared(self):
        a = RunStats()
        b = RunStats()
        a.network.flit_link_traversals = 100
        b.network.flit_link_traversals = 200
        deltas = compare_stats(a, b)
        assert any(d.metric == "flit_link_traversals" for d in deltas)


def test_schema2_network_detail_survives_round_trip(real_stats):
    """flits_by_type and link_load (added in schema 2) are part of the
    power model's inputs — the codec must carry them losslessly."""
    assert real_stats.network.flits_by_type
    # link tracking is opt-in; seed some load so the codec is exercised
    real_stats.network.link_load[(0, 1)] += 12
    real_stats.network.link_load[(5, 4)] += 3
    loaded = stats_from_dict(stats_to_dict(real_stats))
    assert dict(loaded.network.flits_by_type) == dict(
        real_stats.network.flits_by_type
    )
    assert dict(loaded.network.link_load) == dict(real_stats.network.link_load)


def test_schema1_documents_still_load(real_stats):
    data = stats_to_dict(real_stats)
    assert data["schema"] == 6
    data["schema"] = 1
    del data["prediction"]
    del data["consolidation"]
    del data["network"]["flits_by_type"]
    del data["network"]["link_load"]
    del data["network"]["local_messages"]
    loaded = stats_from_dict(data)
    assert loaded.operations == real_stats.operations
    assert not loaded.network.flits_by_type
    assert loaded.network.local_messages == 0


def test_schema2_documents_still_load(real_stats):
    """Pre-local_messages documents load with the counter defaulting
    to zero (schema 3 split intra-tile deliveries out of messages)."""
    data = stats_to_dict(real_stats)
    data["schema"] = 2
    del data["network"]["local_messages"]
    loaded = stats_from_dict(data)
    assert loaded.operations == real_stats.operations
    assert loaded.network.messages == real_stats.network.messages
    assert loaded.network.local_messages == 0


def test_schema3_documents_still_load(real_stats):
    """Pre-prediction documents (schema 3) load with an empty
    ``prediction`` dict — the section schema 4 added."""
    data = stats_to_dict(real_stats)
    data["schema"] = 3
    del data["prediction"]
    loaded = stats_from_dict(data)
    assert loaded.operations == real_stats.operations
    assert loaded.prediction == {}


def test_schema4_prediction_round_trip(real_stats):
    assert real_stats.prediction["l1c_lookups"] >= 0
    loaded = stats_from_dict(stats_to_dict(real_stats))
    assert loaded.prediction == real_stats.prediction
    assert "l2c_forced_relinquishes" in loaded.prediction


def test_schema4_documents_still_load(real_stats):
    """Pre-bus documents (schema 4) load with the four ``bus_*``
    counters defaulting to zero (the section schema 5 added)."""
    data = stats_to_dict(real_stats)
    data["schema"] = 4
    for key in ("bus_transactions", "bus_flit_traversals",
                "bus_busy_cycles", "bus_wait_cycles"):
        del data["network"][key]
    loaded = stats_from_dict(data)
    assert loaded.operations == real_stats.operations
    assert loaded.network.bus_transactions == 0
    assert loaded.network.bus_busy_cycles == 0


def test_schema5_documents_still_load(real_stats):
    """Pre-consolidation documents (schema 5) load with an empty
    ``consolidation`` dict — static runs by definition."""
    data = stats_to_dict(real_stats)
    data["schema"] = 5
    del data["consolidation"]
    loaded = stats_from_dict(data)
    assert loaded.operations == real_stats.operations
    assert loaded.consolidation == {}


def test_schema6_consolidation_round_trip(real_stats):
    real_stats.consolidation["vm_migrate"] = 2
    real_stats.consolidation["blocks_migrated"] = 137
    real_stats.consolidation["blocks_flushed"] = 41
    loaded = stats_from_dict(stats_to_dict(real_stats))
    assert loaded.consolidation == {
        "vm_migrate": 2,
        "blocks_migrated": 137,
        "blocks_flushed": 41,
    }


def test_schema6_consolidation_merges():
    from repro.stats.counters import RunStats as RS

    a, b = RS(), RS()
    a.consolidation = {"vm_migrate": 1, "blocks_flushed": 10}
    b.consolidation = {"vm_migrate": 2, "pages_broken": 6}
    a.merge(b)
    assert a.consolidation == {
        "vm_migrate": 3,
        "blocks_flushed": 10,
        "pages_broken": 6,
    }


def test_schema5_bus_counters_round_trip(real_stats):
    real_stats.network.bus_transactions = 11
    real_stats.network.bus_flit_traversals = 176
    real_stats.network.bus_busy_cycles = 44
    real_stats.network.bus_wait_cycles = 9
    loaded = stats_from_dict(stats_to_dict(real_stats))
    assert loaded.network.bus_transactions == 11
    assert loaded.network.bus_flit_traversals == 176
    assert loaded.network.bus_busy_cycles == 44
    assert loaded.network.bus_wait_cycles == 9
