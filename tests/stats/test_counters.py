"""Unit tests for the statistics containers."""

import pytest

from repro.stats.counters import MISS_CATEGORIES, LatencyAccumulator, RunStats


class TestLatencyAccumulator:
    def test_empty(self):
        acc = LatencyAccumulator()
        # no samples → mean is None, not a misleading 0.0 (and no
        # ZeroDivisionError either)
        assert acc.mean is None
        assert acc.count == 0

    def test_accumulates(self):
        acc = LatencyAccumulator()
        for v in (10, 20, 30):
            acc.add(v)
        assert acc.count == 3
        assert acc.mean == 20.0
        assert acc.minimum == 10
        assert acc.maximum == 30

    def test_single_value(self):
        acc = LatencyAccumulator()
        acc.add(7)
        assert acc.minimum == acc.maximum == 7


class TestRunStats:
    def test_miss_categories_initialized(self):
        st = RunStats()
        assert set(st.miss_categories) == set(MISS_CATEGORIES)
        st.classify_miss("pred_owner_hit")
        assert st.miss_categories["pred_owner_hit"] == 1
        with pytest.raises(KeyError):
            st.classify_miss("bogus")

    def test_rates(self):
        st = RunStats()
        assert st.l1_miss_rate == 0.0
        assert st.l2_miss_rate == 0.0
        st.l1_hits = 90
        st.l1_misses = 10
        assert st.l1_miss_rate == pytest.approx(0.1)
        st.l2_data_hits = 3
        st.l2_misses = 1
        assert st.l2_miss_rate == pytest.approx(0.25)

    def test_structure_creates_on_demand(self):
        st = RunStats()
        s = st.structure("l1")
        s.tag_reads += 5
        assert st.structure("l1").tag_reads == 5

    def test_summary_keys(self):
        st = RunStats(protocol="p", workload="w")
        summary = st.summary()
        for key in ("protocol", "workload", "cycles", "operations",
                    "l1_miss_rate", "l2_miss_rate", "flit_links"):
            assert key in summary

    def test_summary_zero_sample_averages_are_none(self):
        # a run with no misses must not report avg latency/links of 0.0
        # as if misses completed instantly
        st = RunStats(protocol="p", workload="w")
        summary = st.summary()
        assert summary["avg_miss_latency"] is None
        assert summary["avg_miss_links"] is None
        st.miss_latency.add(12)
        assert st.summary()["avg_miss_latency"] == 12.0

    def test_merge_empty_into_empty_keeps_none_mean(self):
        a, b = RunStats(), RunStats()
        a.merge(b)
        assert a.miss_latency.mean is None
        assert a.miss_links.mean is None


class TestLatencyAccumulatorMerge:
    def fill(self, values):
        acc = LatencyAccumulator()
        for v in values:
            acc.add(v)
        return acc

    def test_merge_equals_union_of_samples(self):
        a = self.fill([10, 40])
        b = self.fill([5, 25, 30])
        a.merge(b)
        union = self.fill([10, 40, 5, 25, 30])
        assert (a.count, a.total, a.minimum, a.maximum) == (
            union.count,
            union.total,
            union.minimum,
            union.maximum,
        )
        assert a.mean == union.mean

    def test_merge_empty_other_is_noop(self):
        a = self.fill([3, 9])
        a.merge(LatencyAccumulator())
        assert (a.count, a.total, a.minimum, a.maximum) == (2, 12, 3, 9)

    def test_merge_into_empty_copies(self):
        a = LatencyAccumulator()
        a.merge(self.fill([7, 2]))
        assert (a.count, a.total, a.minimum, a.maximum) == (2, 9, 2, 7)
        # other side untouched
        b = self.fill([1])
        a.merge(b)
        assert b.count == 1

    def test_merge_two_empty_stays_empty(self):
        a = LatencyAccumulator()
        a.merge(LatencyAccumulator())
        assert (a.count, a.total, a.minimum, a.maximum) == (0, 0, 0, 0)
        assert a.mean is None


class TestRunStatsMerge:
    def sample(self, protocol="dico", ops=10):
        st = RunStats(protocol=protocol, workload="radix")
        st.cycles = 100
        st.operations = ops
        st.l1_hits = 4 * ops
        st.l1_misses = ops
        st.miss_categories["memory"] = ops
        st.miss_latency.add(20)
        st.structure("l1").tag_reads = 5 * ops
        st.network.messages = 3 * ops
        return st

    def test_counters_and_substructures_sum(self):
        a, b = self.sample(ops=10), self.sample(ops=4)
        a.merge(b)
        assert a.cycles == 200
        assert a.operations == 14
        assert a.l1_misses == 14
        assert a.miss_categories["memory"] == 14
        assert a.miss_latency.count == 2
        assert a.structure("l1").tag_reads == 70
        assert a.network.messages == 42
        # ``b`` unmodified
        assert b.operations == 4

    def test_merge_into_fresh_stats_adopts_identity(self):
        agg = RunStats()
        agg.merge(self.sample())
        assert (agg.protocol, agg.workload) == ("dico", "radix")
        assert agg.operations == 10

    def test_mismatched_identity_rejected(self):
        a = self.sample(protocol="dico")
        with pytest.raises(ValueError, match="protocol"):
            a.merge(self.sample(protocol="directory"))
