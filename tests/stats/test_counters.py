"""Unit tests for the statistics containers."""

import pytest

from repro.stats.counters import MISS_CATEGORIES, LatencyAccumulator, RunStats


class TestLatencyAccumulator:
    def test_empty(self):
        acc = LatencyAccumulator()
        assert acc.mean == 0.0
        assert acc.count == 0

    def test_accumulates(self):
        acc = LatencyAccumulator()
        for v in (10, 20, 30):
            acc.add(v)
        assert acc.count == 3
        assert acc.mean == 20.0
        assert acc.minimum == 10
        assert acc.maximum == 30

    def test_single_value(self):
        acc = LatencyAccumulator()
        acc.add(7)
        assert acc.minimum == acc.maximum == 7


class TestRunStats:
    def test_miss_categories_initialized(self):
        st = RunStats()
        assert set(st.miss_categories) == set(MISS_CATEGORIES)
        st.classify_miss("pred_owner_hit")
        assert st.miss_categories["pred_owner_hit"] == 1
        with pytest.raises(KeyError):
            st.classify_miss("bogus")

    def test_rates(self):
        st = RunStats()
        assert st.l1_miss_rate == 0.0
        assert st.l2_miss_rate == 0.0
        st.l1_hits = 90
        st.l1_misses = 10
        assert st.l1_miss_rate == pytest.approx(0.1)
        st.l2_data_hits = 3
        st.l2_misses = 1
        assert st.l2_miss_rate == pytest.approx(0.25)

    def test_structure_creates_on_demand(self):
        st = RunStats()
        s = st.structure("l1")
        s.tag_reads += 5
        assert st.structure("l1").tag_reads == 5

    def test_summary_keys(self):
        st = RunStats(protocol="p", workload="w")
        summary = st.summary()
        for key in ("protocol", "workload", "cycles", "operations",
                    "l1_miss_rate", "l2_miss_rate", "flit_links"):
            assert key in summary
