#!/usr/bin/env python
"""Protocol walkthrough: drive a tiny chip by hand, one access at a time.

Shows the coherence-state machinery at message granularity for all four
protocols — useful to understand Table I and Fig. 2 of the paper:

* a read allocates ownership,
* a second-area read creates a provider (or dissolves ownership in
  DiCo-Arin),
* an in-area read becomes a *shortened miss*,
* a write tears the whole sharing tree down.

Run:  python examples/protocol_trace.py
"""

from repro import make_protocol, small_test_chip
from repro.core.states import L1State


def dump(proto, block: int) -> str:
    """One-line census of every copy of ``block`` on the chip."""
    parts = []
    for tile, l1 in enumerate(proto.l1s):
        line = l1.peek(block)
        if line is not None and line.state is not L1State.I:
            extra = ""
            if line.sharers:
                extra += f" sharers={[t for t in range(16) if line.sharers >> t & 1]}"
            if line.propos:
                extra += f" propos={line.propos}"
            parts.append(f"L1[{tile}]:{line.state.name}{extra}")
    home = proto.home_of(block)
    entry = proto.l2s[home].peek(block)
    if entry is not None:
        kind = (
            "inter-area" if entry.inter_area
            else "owner" if entry.is_owner
            else "copy"
        )
        parts.append(f"L2[{home}]:{kind}")
    owner = proto.l2cs[home].peek_owner(block)
    if owner is not None:
        parts.append(f"L2C$->{owner}")
    return "  ".join(parts) or "(not cached)"


def main() -> None:
    cfg = small_test_chip()  # 4x4 tiles, 4 areas of 2x2
    block = 5                # homed at tile 5 (area 0)
    addr = block << 6

    # the 4x4 areas: {0,1,4,5} {2,3,6,7} {8,9,12,13} {10,11,14,15}
    steps = [
        ("tile 0 reads   (area 0, becomes owner)", 0, False),
        ("tile 1 reads   (same area, 2-hop at owner)", 1, False),
        ("tile 10 reads  (remote area)", 10, False),
        ("tile 11 reads  (same area as 10: in-area resolution)", 11, False),
        ("tile 2 writes  (tears everything down)", 2, True),
        ("tile 10 reads  (after the write)", 10, False),
    ]

    for name in ("directory", "dico", "dico-providers", "dico-arin"):
        proto = make_protocol(name, cfg, seed=0)
        print(f"=== {name} ===")
        now = 0
        for label, tile, is_write in steps:
            r = proto.access(tile, addr, is_write, now)
            while r.needs_retry:
                now = r.retry_at
                r = proto.access(tile, addr, is_write, now)
            now += max(1, r.latency) + 1000
            cat = f" [{r.category}]" if r.category else " [L1 hit]"
            print(f"  {label:52s} lat={r.latency:4d}{cat}")
            print(f"      {dump(proto, block)}")
            proto.check_block(block)  # invariants hold at every step
        print(f"  messages sent: {dict(proto.network.stats.by_type)}")
        print()


if __name__ == "__main__":
    main()
