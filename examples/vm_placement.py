#!/usr/bin/env python
"""VM placement study: area-aligned vs the Fig. 6 alternative.

The paper's protocols are optimized for VMs that fit the static areas,
but Sec. V shows they degrade gracefully when VMs straddle areas.  This
script runs both placements side by side and reports performance,
broadcast traffic (DiCo-Arin's weak spot) and where misses resolve.

Run:  python examples/vm_placement.py
"""

from repro import Chip, paper_scaled_chip
from repro.workloads.placement import VMPlacement

PROTOCOLS = ("directory", "dico-providers", "dico-arin")
CYCLES = 60_000


def run(protocol: str, placement) -> dict:
    chip = Chip(protocol, "apache", config=paper_scaled_chip(), seed=2,
                placement=placement)
    stats = chip.run_cycles(CYCLES, warmup=CYCLES)
    chip.verify_coherence()
    total_misses = sum(stats.miss_categories.values()) or 1
    shortened = (
        stats.miss_categories["pred_provider_hit"]
        + stats.miss_categories["unpredicted_provider"]
    )
    return {
        "ops": stats.operations,
        "broadcasts": stats.broadcast_invalidations,
        "avg_links": stats.miss_links.mean,
        "shortened": shortened / total_misses,
    }


def main() -> None:
    cfg = paper_scaled_chip()
    alt = VMPlacement.alternative(cfg.mesh_width, cfg.mesh_height, 4)

    print(f"{'protocol':16s} {'placement':10s} {'ops':>9} {'bcasts':>7} "
          f"{'links/miss':>11} {'shortened':>10}")
    for protocol in PROTOCOLS:
        for name, placement in (("aligned", None), ("alt", alt)):
            r = run(protocol, placement)
            print(
                f"{protocol:16s} {name:10s} {r['ops']:>9} "
                f"{r['broadcasts']:>7} {r['avg_links']:>11.2f} "
                f"{r['shortened']:>10.1%}"
            )

    print(
        "\nExpected shape (Sec. V): performance barely moves under the\n"
        "alternative placement; DiCo-Arin's broadcast invalidations grow\n"
        "because VM-private read/write data becomes inter-area data;\n"
        "DiCo-Providers now uses providers for VM-private data too."
    )


if __name__ == "__main__":
    main()
