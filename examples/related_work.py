#!/usr/bin/env python
"""Related-work studies: Virtual Hierarchies and heterogeneous wires.

Reproduces the two comparisons the paper makes in Sec. II:

1. **Virtual Hierarchies** (Marty & Hill): also isolates VMs, but needs
   a second level of coherence information and reduplicates
   deduplicated data per domain.  We run the simplified VH comparator
   next to DiCo-Providers and show both effects.
2. **Heterogeneous interconnects** (Flores et al. [10]): orthogonal to
   the paper's protocols; we stack it on DiCo-Providers and report the
   latency/energy trade.

Run:  python examples/related_work.py
"""

from repro import Chip, DEFAULT_CHIP, paper_scaled_chip
from repro.core.protocols.vh import vh_storage_breakdown
from repro.core.storage import storage_breakdown
from repro.noc.heterogeneous import WireConfig, install_heterogeneous_network
from repro.sim.chip import make_protocol

CYCLES = 60_000


def run(protocol: str):
    chip = Chip(protocol, "apache", config=paper_scaled_chip(), seed=2)
    stats = chip.run_cycles(CYCLES, warmup=CYCLES)
    chip.verify_coherence()
    return chip, stats


def dedup_l2_copies(chip) -> int:
    proto, table = chip.protocol, chip.workload.table
    return sum(
        1
        for l2 in proto.l2s
        for block, entry in l2
        if entry.has_data
        and table.is_deduplicated_ppage(proto.addr.page_of_block(block))
    )


def main() -> None:
    print("== Virtual Hierarchies vs the area protocols ==")
    print(f"{'protocol':16s} {'storage %':>10} {'dedup L2 copies':>16} "
          f"{'L2 miss':>8} {'ops':>9}")
    vh_chip, vh_stats = run("vh")
    prov_chip, prov_stats = run("dico-providers")
    rows = [
        ("vh", 100 * vh_storage_breakdown(DEFAULT_CHIP).overhead,
         dedup_l2_copies(vh_chip), vh_stats),
        ("dico-providers", 100 * storage_breakdown("dico-providers").overhead,
         dedup_l2_copies(prov_chip), prov_stats),
    ]
    for name, storage, copies, stats in rows:
        print(f"{name:16s} {storage:>10.2f} {copies:>16} "
              f"{stats.l2_miss_rate:>8.3f} {stats.operations:>9}")
    print(
        "\nVH keeps one copy of each hot deduplicated block *per domain*"
        "\n(the paper's reduplication critique); the area protocols keep one."
    )

    print("\n== Heterogeneous wires on DiCo-Providers ==")
    proto = make_protocol("dico-providers", paper_scaled_chip(), seed=2)
    net = install_heterogeneous_network(proto, WireConfig())
    chip = Chip(proto, "apache", seed=2)
    het_stats = chip.run_cycles(CYCLES, warmup=CYCLES)
    chip.verify_coherence()
    print(
        f"homogeneous:   ops={prov_stats.operations}\n"
        f"heterogeneous: ops={het_stats.operations}  "
        f"fast msgs={net.fast_messages}  slow msgs={net.slow_messages}  "
        f"link energy x{net.link_energy_ratio():.3f}"
    )


if __name__ == "__main__":
    main()
