#!/usr/bin/env python
"""NoC traffic study: where do the flits go under each protocol?

Enables per-link accounting and renders a router-load heat map for the
directory protocol and DiCo-Providers, plus the intra- vs inter-area
traffic split — the spatial view of the paper's claim that the area
protocols keep deduplicated-data traffic inside the areas.

Run:  python examples/noc_hotspots.py
"""

from dataclasses import replace

from repro import Chip, paper_scaled_chip
from repro.analysis import area_crossing_flits, heatmap, hotspots


def main() -> None:
    base = paper_scaled_chip()
    config = replace(base, noc=replace(base.noc, track_link_load=True))

    for protocol in ("directory", "dico-providers"):
        chip = Chip(protocol, "apache", config=config, seed=2)
        chip.run_cycles(60_000, warmup=60_000)
        chip.verify_coherence()
        proto = chip.protocol
        stats = proto.network.stats

        print(f"=== {protocol} ===")
        print("router-load heat map (8x8 tiles):")
        print(heatmap(stats, proto.mesh))

        area_of = {t: proto.areas.area_of(t) for t in range(config.n_tiles)}
        split = area_crossing_flits(stats, proto.mesh, area_of)
        total = split["intra_area"] + split["inter_area"] or 1
        print(
            f"traffic split: intra-area {split['intra_area']} flits "
            f"({split['intra_area'] / total:.1%}), "
            f"inter-area {split['inter_area']} flits "
            f"({split['inter_area'] / total:.1%})"
        )
        print("hottest links:")
        for (src, dst), flits in hotspots(stats, proto.mesh, top=3):
            print(f"  {src:>2} -> {dst:<2} {flits} flits")
        print()


if __name__ == "__main__":
    main()
