#!/usr/bin/env python
"""Storage and leakage scaling with core count and area count.

Regenerates the analytic side of the paper — Tables V, VI and VII —
and explores the design space beyond it: for each chip size, which
area count minimizes each protocol's storage overhead?

Run:  python examples/area_scaling.py
"""

from repro import DEFAULT_CHIP, leakage_table, overhead_table, storage_breakdown
from repro.core.storage import PROTOCOL_NAMES


def main() -> None:
    print("Table V — per-tile coherence storage (64 tiles, 4 areas)")
    for proto in PROTOCOL_NAMES:
        b = storage_breakdown(proto, DEFAULT_CHIP)
        parts = "  ".join(f"{s.name}={s.total_kb:g}KB" for s in b.coherence)
        print(f"  {proto:16s} {b.coherence_kb:7.2f} KB  "
              f"({100 * b.overhead:5.2f}%)   {parts}")

    print("\nTable VI — cache leakage per tile (calibrated CACTI model)")
    table = leakage_table()
    base = table["directory"]
    for proto, rep in table.items():
        rel = rep.vs(base)
        print(
            f"  {proto:16s} total={rep.total_mw:6.1f} mW ({rel['total_pct']:+5.1f}%)"
            f"   tags={rep.tag_mw:5.1f} mW ({rel['tag_pct']:+5.1f}%)"
        )

    print("\nTable VII — storage overhead %% by (cores, areas)")
    sweep = overhead_table()
    for cores, per_area in sweep.items():
        areas = sorted(per_area)
        print(f"\n  {cores} cores" + "".join(f"{a:>8}" for a in areas))
        for proto in PROTOCOL_NAMES:
            cells = "".join(f"{per_area[a][proto]:8.1f}" for a in areas)
            print(f"  {proto:12s}{cells}")

    print("\nBest area count per protocol and chip size:")
    for cores, per_area in sweep.items():
        for proto in ("dico-providers", "dico-arin"):
            best = min(per_area, key=lambda a: per_area[a][proto])
            print(
                f"  {cores:5d} cores  {proto:16s} -> {best:4d} areas "
                f"({per_area[best][proto]:.1f}%)"
            )


if __name__ == "__main__":
    main()
