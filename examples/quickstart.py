#!/usr/bin/env python
"""Quickstart: compare the four coherence protocols on one workload.

Builds the paper's 64-tile chip (scaled caches), runs four consolidated
Apache VMs under each protocol, and prints the performance, miss and
power comparison — a miniature version of the paper's evaluation.

Run:  python examples/quickstart.py [workload] [cycles]
"""

import sys

from repro import Chip, DEFAULT_CHIP, paper_scaled_chip
from repro.analysis import (
    fig7_rows,
    fig9a_performance,
    fig9b_miss_breakdown,
    grouped_bars,
    stacked_bars,
)

PROTOCOLS = ("directory", "dico", "dico-providers", "dico-arin")


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "apache"
    cycles = int(sys.argv[2]) if len(sys.argv) > 2 else 60_000
    config = paper_scaled_chip()

    print(f"workload={workload}  window={cycles} cycles  "
          f"chip={config.mesh_width}x{config.mesh_height}, "
          f"{config.n_areas} areas, 4 VMs")
    print()

    results = {}
    for protocol in PROTOCOLS:
        chip = Chip(protocol, workload, config=config, seed=1)
        stats = chip.run_cycles(cycles, warmup=cycles // 2)
        chip.verify_coherence()  # the run must be provably coherent
        results[protocol] = stats
        print(
            f"{protocol:16s} ops={stats.operations:>8}  "
            f"L1 miss={stats.l1_miss_rate:6.1%}  "
            f"avg miss latency={stats.miss_latency.mean:6.1f} cyc  "
            f"broadcasts={stats.network.broadcasts}"
        )

    print()
    print(grouped_bars(
        fig9a_performance(results),
        title="Performance normalized to the directory (bigger is better):",
    ))

    power = {
        proto: {k: row[k] for k in ("cache", "links", "routing")}
        for proto, row in fig7_rows(results, DEFAULT_CHIP).items()
    }
    print()
    print(stacked_bars(
        power,
        segments=("cache", "links", "routing"),
        title="Dynamic power normalized to the directory's cache power\n"
              "(energies use the paper's full-size Table III geometry):",
    ))

    print("\nHow L1 misses were resolved:")
    for proto, shares in fig9b_miss_breakdown(results).items():
        top = ", ".join(
            f"{cat}={share:.1%}" for cat, share in shares.items() if share > 0.005
        )
        print(f"  {proto:16s} {top}")


if __name__ == "__main__":
    main()
