#!/usr/bin/env python
"""Server-consolidation study: deduplication and provider behaviour.

Reproduces the paper's core scenario in detail: four VMs on a 64-tile
chip with hypervisor page deduplication.  The script shows

1. how much physical memory deduplication saves (Table IV column),
2. copy-on-write breaks when a VM writes a deduplicated page,
3. where the copies of a hot deduplicated block end up under
   DiCo-Providers (one provider per area), and
4. the share of misses the area protocols resolve *inside* the
   requestor's area (the paper's "shortened misses").

Run:  python examples/consolidation_study.py
"""

from collections import Counter

from repro import Chip, paper_scaled_chip
from repro.core.states import L1State

PROTOCOLS = ("dico-providers", "dico-arin")


def main() -> None:
    config = paper_scaled_chip()

    for protocol in PROTOCOLS:
        chip = Chip(protocol, "apache", config=config, seed=3)
        workload = chip.workload
        print(f"=== {protocol} ===")
        print(
            f"dedup: {workload.table.pages_allocated} physical pages allocated, "
            f"{workload.table.pages_saved} saved "
            f"({workload.dedup_saving:.1%} of logical pages — "
            f"Table IV reports 21.72% for Apache)"
        )

        stats = chip.run_cycles(80_000, warmup=80_000)
        chip.verify_coherence()
        print(f"copy-on-write breaks during the run: {workload.cow_breaks}")

        # census of L1 states for deduplicated blocks
        proto = chip.protocol
        states: Counter = Counter()
        dedup_blocks_cached = 0
        for tile, l1 in enumerate(proto.l1s):
            for block, line in l1:
                page = proto.addr.page_of_block(block)
                if workload.table.is_deduplicated_ppage(page):
                    states[line.state.name] += 1
                    dedup_blocks_cached += 1
        print(
            f"cached copies of deduplicated blocks: {dedup_blocks_cached} "
            f"by state: {dict(states)}"
        )

        # providers per area for one hot deduplicated block
        providers_per_area: Counter = Counter()
        for tile, l1 in enumerate(proto.l1s):
            for block, line in l1:
                if line.state is L1State.P:
                    providers_per_area[proto.areas.area_of(tile)] += 1
        print(f"provider copies per area: {dict(providers_per_area)}")

        total_misses = sum(stats.miss_categories.values()) or 1
        shortened = (
            stats.miss_categories["pred_provider_hit"]
            + stats.miss_categories["unpredicted_provider"]
        )
        print(
            f"misses resolved by a provider in the requestor's area: "
            f"{shortened} ({shortened / total_misses:.1%} of misses)"
        )
        print(
            f"average links per miss: {stats.miss_links.mean:.2f} "
            f"(a chip-wide 2-hop miss averages 10.6 links, an in-area one 5.4)"
        )
        print()


if __name__ == "__main__":
    main()
